//! The deep Q-learning agent.

// `argmax` is the stack's single first-on-ties rule: batched action
// selection must never diverge from `Tensor::argmax`-based serial
// selection on ties.
use mramrl_nn::{
    argmax, GemmBackend, Loss, Network, NetworkSpec, QGemmBackend, QWorkspace, QuantizedNet, Sgd,
    Tensor, Workspace,
};

use crate::replay::{Transition, TransitionBatch};

/// Numeric precision the agent *acts* with (Q-value evaluation for
/// action selection). Training math — TD targets, gradients, SGD — is
/// always float: the paper trains in float-equivalent wide arithmetic
/// and deploys inference on the 16-bit datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActingPrecision {
    /// Act on the float online network (the training default).
    #[default]
    Float32,
    /// Deployment mode: act through a Q8.8 [`QuantizedNet`] snapshot of
    /// the online network, batched — the software mirror of the drone
    /// fleet running the silicon's 16-bit inference datapath. The
    /// snapshot is (re)taken lazily and invalidated whenever the online
    /// weights can change ([`QAgent::apply_update`],
    /// [`QAgent::load_transfer`], [`QAgent::net_mut`], ...), so acting
    /// always reflects the current weights; frozen-policy evaluation
    /// quantises exactly once.
    FixedQ8_8,
}

/// A Q-learning agent: online network + target network + Bellman updates.
///
/// The Q update follows Eq. 1 of the paper,
/// `Q(s,a) ← r + γ·max_a' Q(s',a')`, realised as a gradient step on
/// `½(Q(s,a) − y)²`. The target `y` is computed from a periodically-synced
/// copy of the network (a standard stabiliser; sync period configurable).
///
/// # Examples
///
/// ```
/// use mramrl_rl::QAgent;
/// use mramrl_nn::{NetworkSpec, Tensor};
///
/// let spec = NetworkSpec::micro(16, 1, 5);
/// let mut agent = QAgent::new(&spec, 7);
/// let obs = Tensor::zeros(&[1, 16, 16]);
/// let action = agent.greedy_action(&obs);
/// assert!(action < 5);
/// ```
pub struct QAgent {
    net: Network,
    target: Network,
    /// The spec both networks were built from (kept for Q8.8 snapshots).
    spec: NetworkSpec,
    /// Reusable scratch for the online net's batched passes.
    ws: Workspace,
    /// Reusable scratch for the target net's TD-target forwards.
    target_ws: Workspace,
    /// Which datapath action selection runs on.
    acting: ActingPrecision,
    /// Lazily-built Q8.8 snapshot of the online net (deployment mode);
    /// `None` whenever the online weights may have changed since.
    qsnap: Option<std::sync::Arc<QuantizedNet>>,
    /// Reusable scratch for the snapshot's batched passes.
    qws: QWorkspace,
    gamma: f32,
    loss: Loss,
    double_q: bool,
    steps_since_sync: u64,
}

impl QAgent {
    /// Default discount factor.
    pub const DEFAULT_GAMMA: f32 = 0.95;

    /// Builds an agent (online + target nets) from a spec.
    pub fn new(spec: &NetworkSpec, seed: u64) -> Self {
        let net = spec.build(seed);
        let mut target = spec.build(seed.wrapping_add(1));
        target
            .copy_weights_from(&net)
            .expect("structurally identical by construction");
        let ws = net.workspace();
        let target_ws = target.workspace();
        Self {
            net,
            target,
            spec: spec.clone(),
            ws,
            target_ws,
            acting: ActingPrecision::Float32,
            qsnap: None,
            qws: QWorkspace::new(),
            gamma: Self::DEFAULT_GAMMA,
            loss: Loss::SquaredError,
            double_q: false,
            steps_since_sync: 0,
        }
    }

    /// Selects the acting datapath (builder form of
    /// [`QAgent::set_acting_precision`]).
    #[must_use]
    pub fn with_acting_precision(mut self, p: ActingPrecision) -> Self {
        self.set_acting_precision(p);
        self
    }

    /// Switches the acting datapath: [`ActingPrecision::FixedQ8_8`]
    /// routes [`QAgent::q_values`], [`QAgent::q_values_batch`],
    /// [`QAgent::greedy_action`] and [`QAgent::greedy_actions`] through
    /// a Q8.8 snapshot of the online network — deployment-mode acting,
    /// as the silicon would run it. TD accumulation stays float.
    pub fn set_acting_precision(&mut self, p: ActingPrecision) {
        self.acting = p;
    }

    /// The acting datapath currently selected.
    pub fn acting_precision(&self) -> ActingPrecision {
        self.acting
    }

    /// The current Q8.8 snapshot of the online network, (re)building it
    /// if the weights changed since the last one — the engine behind
    /// [`ActingPrecision::FixedQ8_8`], exposed for fidelity measurements
    /// and deployment tooling (weight-byte accounting, cost models).
    pub fn quantized_snapshot(&mut self) -> &QuantizedNet {
        if self.qsnap.is_none() {
            let mut snap = QuantizedNet::from_network(&self.spec, &self.net)
                .expect("agent's network is built from its own spec");
            snap.set_backend(QGemmBackend::from_gemm(
                self.net.gemm_backend().unwrap_or_default(),
            ));
            self.qsnap = Some(std::sync::Arc::new(snap));
        }
        self.qsnap.as_ref().expect("just built")
    }

    /// [`QAgent::quantized_snapshot`] as a shared, owned handle — the
    /// snapshot handoff API for serving. The returned `Arc` is the
    /// agent's own cached snapshot (no extra quantisation or copy), so
    /// a serving layer can publish it to in-flight inference workers
    /// while online learning continues: the agent drops *its* reference
    /// on the next weight change, but every handed-out clone keeps the
    /// frozen generation alive until its last batch completes (see
    /// `mramrl_serve::SnapshotStore` and `docs/serving.md`).
    pub fn quantized_snapshot_shared(&mut self) -> std::sync::Arc<QuantizedNet> {
        self.quantized_snapshot();
        self.qsnap.clone().expect("just built")
    }

    /// Drops the Q8.8 snapshot; the next quantised act re-snapshots.
    fn invalidate_quantized(&mut self) {
        self.qsnap = None;
    }

    /// Selects the TD loss (squared error by default; Huber for bounded
    /// gradients under crash-penalty outliers).
    #[must_use]
    pub fn with_loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Enables Double-DQN targets: the online network picks the argmax
    /// action, the target network scores it — the standard fix for
    /// max-operator overestimation (an extension beyond the paper's
    /// vanilla Eq. 1, off by default).
    #[must_use]
    pub fn with_double_q(mut self, enabled: bool) -> Self {
        self.double_q = enabled;
        self
    }

    /// Overrides the discount factor.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1)`.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f32) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
        self.gamma = gamma;
        self
    }

    /// The online network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable online network (topology application, weight loading).
    /// Invalidates any Q8.8 acting snapshot — the caller may mutate
    /// weights through the returned reference.
    pub fn net_mut(&mut self) -> &mut Network {
        self.invalidate_quantized();
        &mut self.net
    }

    /// Routes both networks' conv/FC matrix products through `backend`
    /// (the target network's forward pass is just as hot as the online
    /// one — every TD update evaluates it).
    ///
    /// Note: [`crate::Trainer::run`] re-applies its own
    /// `TrainerConfig::backend` at the start of every run — to pick a
    /// backend for training, set it on the config rather than (only)
    /// here.
    pub fn set_gemm_backend(&mut self, backend: GemmBackend) {
        self.net.set_gemm_backend(backend);
        self.target.set_gemm_backend(backend);
        // The snapshot mirrors the float backend choice (naive→naive,
        // blocked→blocked, threaded→pooled); rebuild on next use.
        self.invalidate_quantized();
    }

    /// Discount factor.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Q-values for an observation, on the selected acting datapath
    /// (float network, or the Q8.8 snapshot in deployment mode).
    pub fn q_values(&mut self, obs: &Tensor) -> Tensor {
        match self.acting {
            ActingPrecision::Float32 => self.net.forward(obs),
            ActingPrecision::FixedQ8_8 => {
                // Batch-of-1 through the agent's reusable workspace —
                // unlike the engine's throwaway-workspace `forward`
                // wrapper, serial deployment acting (every env step of
                // `Trainer::evaluate`/`run`) stays allocation-free in
                // the steady state. Bit-identical to the wrapper by the
                // batched ≡ serial contract.
                self.quantized_snapshot();
                let Self { qsnap, qws, .. } = self;
                qsnap
                    .as_ref()
                    .expect("ensured above")
                    .forward_batch(&obs.clone().unsqueezed0(), qws)
                    .clone()
                    .squeezed0()
            }
        }
    }

    /// Greedy action for an observation.
    pub fn greedy_action(&mut self, obs: &Tensor) -> usize {
        self.q_values(obs).argmax()
    }

    /// Q-values for a batch of observations `[N, ...]` → `[N, actions]`,
    /// on the selected acting datapath.
    ///
    /// One batched pass against the agent's reusable workspace; row `i`
    /// is bit-identical to `q_values(obs_i)` on either datapath.
    pub fn q_values_batch(&mut self, obs: &Tensor) -> Tensor {
        match self.acting {
            ActingPrecision::Float32 => self.net.forward_batch(obs, &mut self.ws).clone(),
            ActingPrecision::FixedQ8_8 => {
                self.quantized_snapshot();
                let Self { qsnap, qws, .. } = self;
                qsnap
                    .as_ref()
                    .expect("ensured above")
                    .q_values_batch(obs, qws)
                    .clone()
            }
        }
    }

    /// [`QAgent::q_values_batch`] into a caller-owned output tensor —
    /// the rollout hot path's form: `out`'s allocation is reused
    /// whenever its volume already matches (see [`Tensor::copy_from`]),
    /// so steady-state acting allocates nothing.
    pub fn q_values_batch_into(&mut self, obs: &Tensor, out: &mut Tensor) {
        match self.acting {
            ActingPrecision::Float32 => {
                let Self { net, ws, .. } = self;
                out.copy_from(net.forward_batch(obs, ws));
            }
            ActingPrecision::FixedQ8_8 => {
                self.quantized_snapshot();
                let Self { qsnap, qws, .. } = self;
                out.copy_from(
                    qsnap
                        .as_ref()
                        .expect("ensured above")
                        .q_values_batch(obs, qws),
                );
            }
        }
    }

    /// Greedy action per sample for a batch of observations, on the
    /// selected acting datapath (the deployment-mode batched act: a
    /// `VecEnv` fleet choosing actions through the quantised net).
    pub fn greedy_actions(&mut self, obs: &Tensor) -> Vec<usize> {
        match self.acting {
            ActingPrecision::Float32 => {
                let q = self.net.forward_batch(obs, &mut self.ws);
                (0..q.batch()).map(|i| argmax(q.sample(i))).collect()
            }
            ActingPrecision::FixedQ8_8 => {
                self.quantized_snapshot();
                let Self { qsnap, qws, .. } = self;
                let q = qsnap
                    .as_ref()
                    .expect("ensured above")
                    .q_values_batch(obs, qws);
                (0..q.batch()).map(|i| argmax(q.sample(i))).collect()
            }
        }
    }

    /// Accumulates one Bellman gradient step for a transition; returns the
    /// TD error. Gradients build up in the network's accumulators until
    /// [`QAgent::apply_update`] (batch-of-N semantics, §III-D).
    pub fn accumulate_td(&mut self, t: &Transition) -> f32 {
        let y = if t.terminal {
            t.reward
        } else if self.double_q {
            // Double-DQN: online argmax, target evaluation.
            let a_star = self.net.forward(&t.next_state).argmax();
            let next_q = self.target.forward(&t.next_state);
            t.reward + self.gamma * next_q.data()[a_star]
        } else {
            let next_q = self.target.forward(&t.next_state);
            t.reward + self.gamma * next_q.max_value()
        };
        let q = self.net.forward(&t.state);
        let td = q.data()[t.action] - y;
        let mut grad = Tensor::zeros(q.shape());
        grad.data_mut()[t.action] = self.loss.gradient(q.data()[t.action], y);
        self.net.backward(&grad);
        td
    }

    /// Batched Bellman accumulation: one target-network forward, one
    /// online forward and one batched backward for all `N` transitions —
    /// every network pass is a single batched GEMM chain instead of `N`
    /// serial ones. Returns the per-sample TD errors.
    ///
    /// The target net's TD-target pass and the online net's pass touch
    /// disjoint networks and workspaces, so their schedule is a pure
    /// performance choice: when each pass is serial inside
    /// (naive/blocked kernels) [`mramrl_nn::pool::join2`] overlaps the
    /// two on the persistent pool; on the threaded backend they run
    /// sequentially so each pass gets the whole pool for its batch-axis
    /// fan-out. Neither schedule affects a single bit of either result.
    ///
    /// From zeroed gradient accumulators (the batch boundary,
    /// i.e. right after [`QAgent::apply_update`]), the accumulated
    /// gradients and returned TD errors are **bit-identical** to calling
    /// [`QAgent::accumulate_td`] serially on the same transitions in
    /// order, on every [`GemmBackend`] and at any `NN_POOL_THREADS` —
    /// the equivalence proptests pin this.
    pub fn accumulate_td_batch(&mut self, batch: &TransitionBatch) -> Vec<f32> {
        let n = batch.len();
        let Self {
            net,
            target,
            ws,
            target_ws,
            ..
        } = self;

        // The target net's TD-target forward is independent of the online
        // net's next pass. Double-DQN: the online net picks a* per sample
        // (overwrites the online workspace — harmless, the state forward
        // below re-fills it, exactly as the serial path re-runs forward);
        // vanilla: the online forward over the *states* runs instead, and
        // its activations are exactly what the backward below consumes.
        //
        // Scheduling (bit-identical either way — the passes share no
        // state): when each pass is serial inside (naive/blocked, or a
        // 1-executor pool) the pool overlaps the two via `join2`; on the
        // threaded backend with real executors the passes run
        // sequentially instead, because each one already fans out across
        // the batch axis — overlapping would pin one forward to a single
        // worker (nested pool calls run inline) and serialize its N
        // per-sample tasks, costing more than the 2-way overlap buys.
        let inner_parallel = net.gemm_backend() == Some(GemmBackend::Threaded)
            && mramrl_nn::pool::current_threads() > 1;
        let mut run_target = || target.forward_batch(&batch.next_states, target_ws).clone();
        let mut run_online = || {
            if self.double_q {
                net.forward_batch(&batch.next_states, ws).clone()
            } else {
                net.forward_batch(&batch.states, ws).clone()
            }
        };
        let (next_q, online_out) = if inner_parallel {
            (run_target(), run_online())
        } else {
            mramrl_nn::pool::join2(run_target, run_online)
        };
        let a_star: Option<Vec<usize>> = self
            .double_q
            .then(|| (0..n).map(|i| argmax(online_out.sample(i))).collect());

        let mut y = vec![0.0f32; n];
        for i in 0..n {
            y[i] = if batch.terminals[i] {
                batch.rewards[i]
            } else if let Some(a_star) = &a_star {
                batch.rewards[i] + self.gamma * next_q.sample(i)[a_star[i]]
            } else {
                let max = next_q
                    .sample(i)
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max);
                batch.rewards[i] + self.gamma * max
            };
        }

        // One batched online forward + backward (the double-Q branch must
        // re-run forward over the states; the vanilla branch already has
        // the right activations cached in the workspace).
        let q = if self.double_q {
            self.net.forward_batch(&batch.states, &mut self.ws)
        } else {
            &online_out
        };
        let actions = q.shape()[1];
        let mut td = vec![0.0f32; n];
        let mut grad = Tensor::zeros(&[n, actions]);
        for i in 0..n {
            let qa = q.sample(i)[batch.actions[i]];
            td[i] = qa - y[i];
            grad.sample_mut(i)[batch.actions[i]] = self.loss.gradient(qa, y[i]);
        }
        self.net
            .backward_batch(&grad, &mut self.ws)
            .expect("forward_batch ran just above");
        td
    }

    /// Applies the accumulated gradients (one training-iteration weight
    /// update) and advances the target-sync counter. Returns `true` when
    /// this update crossed the sync period and copied the online weights
    /// into the target network — the learner's natural publish point
    /// (see `LearnerHook::on_target_sync` in the trainer).
    pub fn apply_update(&mut self, sgd: &Sgd, batch_size: usize, target_sync: u64) -> bool {
        self.net.apply_sgd(sgd, batch_size);
        // Online weights changed: a Q8.8 acting snapshot is stale now.
        self.invalidate_quantized();
        self.steps_since_sync += 1;
        if self.steps_since_sync >= target_sync {
            self.sync_target();
            true
        } else {
            false
        }
    }

    /// Copies online weights into the target network.
    pub fn sync_target(&mut self) {
        self.target
            .copy_weights_from(&self.net)
            .expect("structures never diverge");
        self.steps_since_sync = 0;
    }

    /// Loads transfer-learned weights into both networks (the deployment
    /// "download" of §II-D).
    ///
    /// # Errors
    ///
    /// Propagates [`mramrl_nn::NnError`] on structural mismatch.
    pub fn load_transfer(&mut self, bytes: &[u8]) -> Result<(), mramrl_nn::NnError> {
        self.net.load_weights(bytes)?;
        self.invalidate_quantized();
        self.sync_target();
        Ok(())
    }
}

impl core::fmt::Debug for QAgent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "QAgent(γ={}, {:?})", self.gamma, self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NetworkSpec {
        NetworkSpec::micro(8, 1, 5)
    }

    fn transition(r: f32, terminal: bool) -> Transition {
        Transition {
            state: std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.4)),
            action: 2,
            reward: r,
            next_state: std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.6)),
            terminal,
        }
    }

    #[test]
    fn terminal_target_is_reward_only() {
        let mut agent = QAgent::new(&spec(), 1);
        let t = transition(-1.0, true);
        let q_before = agent.q_values(&t.state).data()[2];
        let td = agent.accumulate_td(&t);
        assert!((td - (q_before + 1.0)).abs() < 1e-5);
    }

    #[test]
    fn nonterminal_target_uses_discounted_max() {
        let mut agent = QAgent::new(&spec(), 2).with_gamma(0.9);
        let t = transition(0.5, false);
        let q_before = agent.q_values(&t.state).data()[2];
        let next_max = agent.target.forward(&t.next_state).max_value();
        let td = agent.accumulate_td(&t);
        assert!((td - (q_before - (0.5 + 0.9 * next_max))).abs() < 1e-5);
    }

    #[test]
    fn repeated_updates_move_q_toward_target() {
        let mut agent = QAgent::new(&spec(), 3).with_gamma(0.0);
        let sgd = Sgd::new(0.01);
        let t = transition(1.0, true);
        let before = (agent.q_values(&t.state).data()[2] - 1.0).abs();
        for _ in 0..100 {
            agent.accumulate_td(&t);
            agent.apply_update(&sgd, 1, u64::MAX);
        }
        let after = (agent.q_values(&t.state).data()[2] - 1.0).abs();
        assert!(after < 0.2 * before, "before {before}, after {after}");
    }

    #[test]
    fn target_sync_copies_weights() {
        let mut agent = QAgent::new(&spec(), 4);
        let sgd = Sgd::new(0.05);
        let t = transition(1.0, true);
        for _ in 0..5 {
            agent.accumulate_td(&t);
            agent.apply_update(&sgd, 1, u64::MAX); // never auto-sync
        }
        let online = agent.net.forward(&t.state);
        let target = agent.target.forward(&t.state);
        assert_ne!(online.data(), target.data());
        agent.sync_target();
        let target = agent.target.forward(&t.state);
        let online = agent.net.forward(&t.state);
        assert_eq!(online.data(), target.data());
    }

    #[test]
    fn double_q_target_uses_online_argmax() {
        let mut plain = QAgent::new(&spec(), 6).with_gamma(0.9);
        let mut double = QAgent::new(&spec(), 6).with_gamma(0.9).with_double_q(true);
        let t = transition(0.2, false);
        // Both see identical weights; the targets differ only when the
        // online argmax is not the target argmax — but the TD math must
        // satisfy: double-Q target ≤ vanilla target (max dominates).
        let td_plain = plain.accumulate_td(&t);
        let td_double = double.accumulate_td(&t);
        // q[a] identical ⇒ smaller target ⇒ larger TD error.
        assert!(td_double >= td_plain - 1e-6);
    }

    #[test]
    fn huber_loss_clamps_gradient() {
        let mut agent = QAgent::new(&spec(), 7).with_loss(Loss::Huber { delta: 0.05 });
        let t = transition(-1.0, true);
        let _ = agent.accumulate_td(&t);
        // The accumulated output-layer gradient is bounded by delta.
        let g = agent.net.grad_norm();
        assert!(g > 0.0);
        let mut agent2 = QAgent::new(&spec(), 7);
        let _ = agent2.accumulate_td(&t);
        assert!(agent.net.grad_norm() <= agent2.net.grad_norm() + 1e-6);
    }

    #[test]
    fn batched_td_matches_serial_bitwise() {
        for double_q in [false, true] {
            let ts: Vec<Transition> = (0..4)
                .map(|i| {
                    let mut t = transition(0.1 * i as f32, i == 3);
                    t.state = std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.1 + 0.2 * i as f32));
                    t.next_state =
                        std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.9 - 0.2 * i as f32));
                    t.action = i % 5;
                    t
                })
                .collect();
            let refs: Vec<&Transition> = ts.iter().collect();
            let batch = TransitionBatch::from_transitions(&refs);

            let mut serial = QAgent::new(&spec(), 17).with_double_q(double_q);
            let serial_td: Vec<f32> = ts.iter().map(|t| serial.accumulate_td(t)).collect();
            let mut batched = QAgent::new(&spec(), 17).with_double_q(double_q);
            let batched_td = batched.accumulate_td_batch(&batch);

            assert_eq!(serial_td, batched_td, "double_q={double_q}");
            let grads = |a: &QAgent| -> Vec<f32> {
                a.net()
                    .layers()
                    .flat_map(|l| l.params().into_iter().flat_map(|p| p.grad.data().to_vec()))
                    .collect()
            };
            assert_eq!(grads(&serial), grads(&batched), "double_q={double_q}");
        }
    }

    #[test]
    fn greedy_actions_match_serial_argmax() {
        let mut agent = QAgent::new(&spec(), 21);
        let obs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::filled(&[1, 8, 8], 0.2 + 0.3 * i as f32))
            .collect();
        let serial: Vec<usize> = obs.iter().map(|o| agent.greedy_action(o)).collect();
        let mut data = Vec::new();
        for o in &obs {
            data.extend_from_slice(o.data());
        }
        let batch = Tensor::from_vec(&[3, 1, 8, 8], data);
        assert_eq!(agent.greedy_actions(&batch), serial);
        let q = agent.q_values_batch(&batch);
        assert_eq!(q.shape(), &[3, 5]);
    }

    #[test]
    fn transfer_load_applies_to_both_networks() {
        let donor = spec().build(77);
        let bytes = donor.save_weights();
        let mut agent = QAgent::new(&spec(), 5);
        agent.load_transfer(&bytes).unwrap();
        let x = Tensor::filled(&[1, 8, 8], 0.3);
        let online = agent.net.forward(&x);
        let target = agent.target.forward(&x);
        assert_eq!(online.data(), target.data());
    }
}
