//! The Fig. 10 / Fig. 11 experiment driver: TL on meta-environments, then
//! online RL per test environment × topology.

use std::collections::HashMap;

use mramrl_env::{DroneEnv, EnvKind};
use mramrl_nn::NetworkSpec;

use crate::agent::QAgent;
use crate::trainer::{evaluate, EvalResult, TrainLog, Trainer, TrainerConfig};
use crate::Topology;

/// Caches the meta-trained weights per meta-environment so the four
/// topologies (and both indoor tests) share one TL phase, as deployment
/// would (§II-D: the meta-model is trained once, then downloaded).
#[derive(Debug, Default)]
pub struct TransferCache {
    weights: HashMap<EnvKind, Vec<u8>>,
}

impl TransferCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the meta-trained weights for `meta`, training them (E2E,
    /// from-scratch schedule) on first use. `camera_px` must match the
    /// spec's input resolution.
    pub fn get_or_train(
        &mut self,
        meta: EnvKind,
        spec: &NetworkSpec,
        tl_iters: u64,
        seed: u64,
        camera_px: usize,
    ) -> Vec<u8> {
        if let Some(w) = self.weights.get(&meta) {
            return w.clone();
        }
        let cam =
            mramrl_env::DepthCamera::new(camera_px, camera_px, 90.0f32.to_radians(), 20.0, 0.02);
        let mut env = DroneEnv::new(meta, seed).with_camera(cam);
        let mut agent = QAgent::new(spec, seed);
        Topology::E2E.apply(agent.net_mut());
        let cfg = TrainerConfig::transfer_learning(tl_iters, seed);
        let _ = Trainer::new(cfg).run(&mut agent, &mut env);
        let bytes = agent.net().save_weights();
        self.weights.insert(meta, bytes.clone());
        bytes
    }

    /// Number of cached meta models.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when nothing has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// One (environment × topology) deployment result.
#[derive(Debug, Clone)]
pub struct EnvRun {
    /// Test environment.
    pub env: EnvKind,
    /// Training topology used online.
    pub topology: Topology,
    /// Full training log (curves, episodes).
    pub log: TrainLog,
    /// Frozen-policy evaluation after training (the Fig. 11 measurement).
    pub eval: EvalResult,
}

/// The Fig. 10/11 experiment matrix.
///
/// # Examples
///
/// ```no_run
/// use mramrl_rl::Fig10Experiment;
///
/// let exp = Fig10Experiment::quick(42);
/// let runs = exp.run_all();
/// assert_eq!(runs.len(), 4 * 4); // 4 envs × {L2,L3,L4,E2E}
/// ```
#[derive(Debug, Clone)]
pub struct Fig10Experiment {
    /// Network specification (micro-AlexNet by default).
    pub spec: NetworkSpec,
    /// TL iterations per meta environment.
    pub tl_iters: u64,
    /// Online RL iterations per (env × topology) run.
    pub online_iters: u64,
    /// Base seed.
    pub seed: u64,
    /// Camera resolution (square). 16 for quick runs, 40 for full.
    pub camera_px: usize,
}

impl Fig10Experiment {
    /// Full-scale defaults (minutes of CPU): 40 px camera, 3 k TL,
    /// 8 k online — the DESIGN.md §6 scaling of the paper's 60 k.
    pub fn full(seed: u64) -> Self {
        Self {
            spec: NetworkSpec::micro(40, 1, 5),
            tl_iters: 3000,
            online_iters: 8000,
            seed,
            camera_px: 40,
        }
    }

    /// Small smoke-test scale (seconds of CPU).
    pub fn quick(seed: u64) -> Self {
        Self {
            spec: NetworkSpec::micro(16, 1, 5),
            tl_iters: 250,
            online_iters: 400,
            seed,
            camera_px: 16,
        }
    }

    fn make_env(&self, kind: EnvKind, seed: u64) -> DroneEnv {
        let cam = mramrl_env::DepthCamera::new(
            self.camera_px,
            self.camera_px,
            90.0f32.to_radians(),
            20.0,
            0.02,
        );
        DroneEnv::new(kind, seed).with_camera(cam)
    }

    /// Runs the four topologies on one test environment, sharing the
    /// cached TL model.
    pub fn run_env(&self, cache: &mut TransferCache, env_kind: EnvKind) -> Vec<EnvRun> {
        self.run_env_with_meta(cache, env_kind, env_kind.meta())
    }

    /// Like [`Fig10Experiment::run_env`] but with an explicit meta
    /// environment (the richer-meta ablation swaps it).
    pub fn run_env_with_meta(
        &self,
        cache: &mut TransferCache,
        env_kind: EnvKind,
        meta: EnvKind,
    ) -> Vec<EnvRun> {
        let tl = cache.get_or_train(meta, &self.spec, self.tl_iters, self.seed, self.camera_px);
        Topology::ALL
            .iter()
            .map(|&topology| {
                let mut agent = QAgent::new(&self.spec, self.seed ^ 0xA5A5);
                agent
                    .load_transfer(&tl)
                    .expect("TL weights match the shared spec");
                topology.apply(agent.net_mut());
                let mut env = self.make_env(env_kind, self.seed);
                let cfg = TrainerConfig::online(self.online_iters, self.seed);
                let log = Trainer::new(cfg).run(&mut agent, &mut env);
                // Frozen-policy SFD measurement (greedy + 2 % residual ε).
                let eval_steps = (self.online_iters / 2).max(200);
                let eval = evaluate(&mut agent, &mut env, eval_steps, 0.02, self.seed);
                EnvRun {
                    env: env_kind,
                    topology,
                    log,
                    eval,
                }
            })
            .collect()
    }

    /// Runs the whole Fig. 10 matrix: 4 test environments × 4 topologies.
    pub fn run_all(&self) -> Vec<EnvRun> {
        let mut cache = TransferCache::new();
        EnvKind::TESTS
            .iter()
            .flat_map(|&k| self.run_env(&mut cache, k))
            .collect()
    }
}

/// Normalises each topology's SFD to the E2E baseline within one
/// environment (the Fig. 11 y-axis).
///
/// Returns `(topology, normalised_sfd)` for every run in `runs` that
/// shares `env`. The E2E entry is 1.0 by construction.
pub fn normalized_sfd(runs: &[EnvRun], env: EnvKind) -> Vec<(Topology, f32)> {
    let e2e = runs
        .iter()
        .find(|r| r.env == env && r.topology == Topology::E2E)
        .map(|r| r.eval.sfd)
        .unwrap_or(0.0);
    runs.iter()
        .filter(|r| r.env == env)
        .map(|r| {
            let norm = if e2e > 0.0 { r.eval.sfd / e2e } else { 0.0 };
            (r.topology, norm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cache_trains_once_per_meta() {
        let exp = Fig10Experiment::quick(9);
        let mut cache = TransferCache::new();
        let a = cache.get_or_train(EnvKind::MetaIndoor, &exp.spec, 60, 9, exp.camera_px);
        let b = cache.get_or_train(EnvKind::MetaIndoor, &exp.spec, 60, 9, exp.camera_px);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let _ = cache.get_or_train(EnvKind::MetaOutdoor, &exp.spec, 60, 9, exp.camera_px);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn run_env_covers_all_topologies() {
        let mut exp = Fig10Experiment::quick(3);
        exp.tl_iters = 60;
        exp.online_iters = 80;
        let mut cache = TransferCache::new();
        let runs = exp.run_env(&mut cache, EnvKind::IndoorApartment);
        assert_eq!(runs.len(), 4);
        let topos: Vec<Topology> = runs.iter().map(|r| r.topology).collect();
        assert_eq!(topos, Topology::ALL.to_vec());
        for r in &runs {
            assert!(!r.log.curve.is_empty());
        }
    }

    #[test]
    fn normalized_sfd_e2e_is_unity() {
        let mut exp = Fig10Experiment::quick(4);
        exp.tl_iters = 60;
        exp.online_iters = 120;
        let mut cache = TransferCache::new();
        let runs = exp.run_env(&mut cache, EnvKind::IndoorApartment);
        let norm = normalized_sfd(&runs, EnvKind::IndoorApartment);
        let e2e = norm.iter().find(|(t, _)| *t == Topology::E2E).unwrap();
        assert!((e2e.1 - 1.0).abs() < 1e-6);
        assert_eq!(norm.len(), 4);
    }

    #[test]
    fn explicit_meta_changes_transfer_source() {
        let mut exp = Fig10Experiment::quick(5);
        exp.tl_iters = 60;
        exp.online_iters = 60;
        let mut cache = TransferCache::new();
        let _ = exp.run_env_with_meta(&mut cache, EnvKind::OutdoorTown, EnvKind::MetaOutdoorRich);
        assert_eq!(cache.len(), 1);
        assert!(cache.weights.contains_key(&EnvKind::MetaOutdoorRich));
    }
}
