//! Q-learning with transfer learning and partial-layer online training.
//!
//! Implements the paper's learning stack (§II):
//!
//! * deep Q-learning over depth images — the CNN estimates `Q(s, ·)` for
//!   the five drone actions, updated with the Bellman target
//!   `r + γ·max_a' Q(s', a')` (Eq. 1);
//! * ε-greedy exploration with linear decay ([`EpsilonSchedule`]);
//! * an experience [`ReplayBuffer`] and a periodically-synced target
//!   network (stability additions over the paper's vanilla Eq. 1,
//!   both standard practice and both documented);
//! * the four **training topologies** of §VI-B ([`Topology`]): `E2E`
//!   trains everything, `L2`/`L3`/`L4` train only the last 2/3/4 FC
//!   layers — the axis the whole hardware co-design exploits;
//! * the TL → online-RL experiment driver ([`experiment`]) and the
//!   metrics of Fig. 10/11: cumulative reward, per-episode return and
//!   safe flight distance ([`metrics`]);
//! * deployment-mode acting ([`ActingPrecision::FixedQ8_8`]): action
//!   selection through a batched Q8.8 snapshot of the online network —
//!   the 16-bit datapath the silicon flies with (`docs/fixed_point.md`)
//!   — while TD training stays float;
//! * the actor/learner training architecture ([`Trainer::run_parallel`]):
//!   N rollout fleets feeding a [`ShardedReplay`] (one shard per fleet)
//!   and one batched learner on a pinned deterministic schedule —
//!   bit-identical to the serial interleaving at any pool size
//!   (`docs/training.md`).
//!
//! # Examples
//!
//! ```
//! use mramrl_rl::{Topology, QAgent};
//! use mramrl_nn::NetworkSpec;
//!
//! let spec = NetworkSpec::micro(16, 1, 5);
//! let mut agent = QAgent::new(&spec, 42);
//! Topology::L3.apply(agent.net_mut());
//! assert!(agent.net().trainable_fraction() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
pub mod experiment;
pub mod metrics;
mod policy;
mod replay;
mod trainer;
pub mod wear;

pub use agent::{ActingPrecision, QAgent};
pub use experiment::{EnvRun, Fig10Experiment, TransferCache};
pub use metrics::{MovingAverage, SafeFlightTracker};
pub use mramrl_nn::Topology;
pub use policy::EpsilonSchedule;
pub use replay::{ReplayBuffer, ShardedReplay, Transition, TransitionBatch};
pub use trainer::{
    evaluate, evaluate_vec, EvalResult, LearnerHook, ParallelStats, TrainLog, Trainer,
    TrainerConfig,
};

#[cfg(test)]
mod tests {
    #[test]
    fn send_public_types() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::QAgent>();
        assert_send::<crate::ReplayBuffer>();
        assert_send::<crate::Topology>();
    }
}
