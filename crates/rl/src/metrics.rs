//! The metrics of Fig. 10 and Fig. 11.
//!
//! * **Cumulative reward**: "the moving average of last N rewards received
//!   by the agent", `R_i = (1/N)·Σ_{j=i−N..i} r_j` (paper N = 15000 at
//!   60 k iterations; the reproduction scales N with its iteration count).
//! * **Return**: "the moving average of the sum of rewards across
//!   episodes", where each episode's contribution is `(1/N_k)·Σ r_j`
//!   between consecutive crashes.
//! * **Safe flight distance (SFD)**: "the average distance (in meters)
//!   travelled by the drone before it crashes" \[3\].

use std::collections::VecDeque;

/// A windowed moving average.
///
/// # Examples
///
/// ```
/// use mramrl_rl::MovingAverage;
///
/// let mut ma = MovingAverage::new(2);
/// ma.push(1.0);
/// ma.push(3.0);
/// ma.push(5.0); // 1.0 falls out
/// assert_eq!(ma.value(), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    items: VecDeque<f32>,
    sum: f64,
}

impl MovingAverage {
    /// Creates an average over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            items: VecDeque::with_capacity(window.min(65_536)),
            sum: 0.0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f32) {
        self.items.push_back(v);
        self.sum += f64::from(v);
        if self.items.len() > self.window {
            let old = self.items.pop_front().expect("non-empty");
            self.sum -= f64::from(old);
        }
    }

    /// Current average (0 when empty).
    pub fn value(&self) -> f32 {
        if self.items.is_empty() {
            0.0
        } else {
            (self.sum / self.items.len() as f64) as f32
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` before any sample arrives.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Tracks per-episode flight distances and summarises the SFD.
///
/// # Examples
///
/// ```
/// use mramrl_rl::SafeFlightTracker;
///
/// let mut sfd = SafeFlightTracker::new();
/// sfd.record_episode(10.0);
/// sfd.record_episode(20.0);
/// assert_eq!(sfd.mean(), 15.0);
/// assert_eq!(sfd.tail_mean(1), 20.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SafeFlightTracker {
    distances: Vec<f32>,
}

impl SafeFlightTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the distance flown in one completed episode.
    pub fn record_episode(&mut self, meters: f32) {
        self.distances.push(meters);
    }

    /// Number of episodes recorded.
    pub fn episodes(&self) -> usize {
        self.distances.len()
    }

    /// Mean distance over all episodes (0 when none).
    pub fn mean(&self) -> f32 {
        if self.distances.is_empty() {
            0.0
        } else {
            self.distances.iter().sum::<f32>() / self.distances.len() as f32
        }
    }

    /// Mean over the last `k` episodes — the post-convergence SFD used for
    /// Fig. 11 (0 when no episodes).
    pub fn tail_mean(&self, k: usize) -> f32 {
        if self.distances.is_empty() || k == 0 {
            return 0.0;
        }
        let start = self.distances.len().saturating_sub(k);
        let tail = &self.distances[start..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// All recorded distances.
    pub fn distances(&self) -> &[f32] {
        &self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_window_semantics() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.value(), 0.0);
        ma.push(3.0);
        assert_eq!(ma.value(), 3.0);
        ma.push(6.0);
        ma.push(9.0);
        assert_eq!(ma.value(), 6.0);
        ma.push(12.0); // 3 falls out
        assert_eq!(ma.value(), 9.0);
        assert_eq!(ma.len(), 3);
    }

    #[test]
    fn moving_average_long_stream_is_stable() {
        let mut ma = MovingAverage::new(100);
        for _ in 0..10_000 {
            ma.push(0.5);
        }
        assert!((ma.value() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sfd_means() {
        let mut s = SafeFlightTracker::new();
        assert_eq!(s.mean(), 0.0);
        for d in [5.0, 10.0, 15.0, 20.0] {
            s.record_episode(d);
        }
        assert_eq!(s.episodes(), 4);
        assert_eq!(s.mean(), 12.5);
        assert_eq!(s.tail_mean(2), 17.5);
        assert_eq!(s.tail_mean(100), 12.5); // clamps to available
        assert_eq!(s.tail_mean(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = MovingAverage::new(0);
    }
}
