//! Exploration policy.

use mramrl_nn::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Linearly-decaying ε-greedy schedule.
///
/// # Examples
///
/// ```
/// use mramrl_rl::EpsilonSchedule;
///
/// let eps = EpsilonSchedule::new(1.0, 0.05, 100);
/// assert_eq!(eps.value(0), 1.0);
/// assert!((eps.value(50) - 0.525).abs() < 1e-6);
/// assert_eq!(eps.value(1000), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    start: f32,
    end: f32,
    decay_steps: u64,
}

impl EpsilonSchedule {
    /// Creates a schedule from `start` to `end` over `decay_steps`.
    ///
    /// # Panics
    ///
    /// Panics if values are outside `[0, 1]` or `start < end`.
    pub fn new(start: f32, end: f32, decay_steps: u64) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        assert!(start >= end, "epsilon must decay");
        assert!(decay_steps > 0, "decay steps must be positive");
        Self {
            start,
            end,
            decay_steps,
        }
    }

    /// Exploration-heavy schedule for learning from scratch (TL phase).
    pub fn scratch(decay_steps: u64) -> Self {
        Self::new(1.0, 0.05, decay_steps)
    }

    /// Low-exploration schedule for online RL on a transferred model —
    /// the TL model already avoids most "unsafe actions early on" (§II-D).
    pub fn transfer(decay_steps: u64) -> Self {
        Self::new(0.25, 0.02, decay_steps)
    }

    /// ε at `step`.
    ///
    /// The interpolation fraction is computed in **f64**: casting the
    /// step counter to f32 quantises above 2²⁴, which made schedules
    /// longer than 2²⁴ steps collapse runs of nearby steps onto one ε
    /// and land on the boundary value several steps early. Moving the
    /// division to f64 was a documented one-time rounding change (any
    /// given ε may shift by ≤ 1 ulp); the shape of the schedule and the
    /// short-schedule doctest values are unchanged.
    #[allow(clippy::cast_precision_loss)]
    pub fn value(&self, step: u64) -> f32 {
        if step >= self.decay_steps {
            return self.end;
        }
        let f = (step as f64 / self.decay_steps as f64) as f32;
        self.start + (self.end - self.start) * f
    }

    /// Chooses an action from Q-values: random with probability ε, greedy
    /// otherwise.
    pub fn choose(&self, q: &Tensor, step: u64, rng: &mut SmallRng) -> usize {
        self.choose_slice(q.data(), step, rng)
    }

    /// [`EpsilonSchedule::choose`] over a raw Q-value row — the per-lane
    /// form the vectorized rollout uses on one row of a `[K, actions]`
    /// batch (identical RNG consumption and the shared
    /// [`mramrl_nn::argmax`] tie-break, so lane 0 of a batch reproduces
    /// the serial call stream exactly).
    pub fn choose_slice(&self, q: &[f32], step: u64, rng: &mut SmallRng) -> usize {
        if rng.gen_range(0.0f32..1.0) < self.value(step) {
            rng.gen_range(0..q.len())
        } else {
            mramrl_nn::argmax(q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn decay_endpoints() {
        let e = EpsilonSchedule::new(0.8, 0.1, 10);
        assert_eq!(e.value(0), 0.8);
        assert!((e.value(10) - 0.1).abs() < 1e-6);
        assert!((e.value(5) - 0.45).abs() < 1e-6);
    }

    #[test]
    fn greedy_when_epsilon_zero() {
        let e = EpsilonSchedule::new(0.0, 0.0, 1);
        let q = Tensor::from_vec(&[5], vec![0.0, 3.0, 1.0, -1.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(e.choose(&q, 100, &mut rng), 1);
        }
    }

    #[test]
    fn explores_when_epsilon_one() {
        let e = EpsilonSchedule::new(1.0, 1.0, 1);
        let q = Tensor::from_vec(&[5], vec![0.0, 3.0, 1.0, -1.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..500 {
            counts[e.choose(&q, 0, &mut rng)] += 1;
        }
        // Every action gets explored.
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn long_schedule_keeps_decaying_near_the_boundary() {
        // decay_steps > 2^24: with the fraction computed via `step as
        // f32`, steps `decay-2` and `decay-1` both rounded to the same
        // f32 (33554436) and produced the same ε — the pre-fix code
        // fails the strict inequality below. In f64 the fractions stay
        // distinct through the final cast.
        let decay = (1u64 << 25) + 5;
        let e = EpsilonSchedule::new(1.0, 0.05, decay);
        assert!(
            e.value(decay - 2) > e.value(decay - 1),
            "{} vs {}",
            e.value(decay - 2),
            e.value(decay - 1)
        );

        // Monotone non-increasing across the whole >2^24-step schedule,
        // never below `end`.
        let steps = [
            0,
            1,
            1 << 20,
            (1 << 24) - 1,
            1 << 24,
            (1 << 24) + 1,
            decay / 2,
            decay - 4,
            decay - 2,
            decay - 1,
            decay,
            decay + 7,
        ];
        let mut prev = f32::INFINITY;
        for &s in &steps {
            let v = e.value(s);
            assert!(v <= prev, "ε increased at step {s}: {prev} -> {v}");
            assert!(v >= e.value(decay), "ε dipped below end at step {s}: {v}");
            prev = v;
        }
    }

    #[test]
    fn transfer_schedule_is_tamer() {
        assert!(EpsilonSchedule::transfer(100).value(0) < EpsilonSchedule::scratch(100).value(0));
    }

    #[test]
    #[should_panic(expected = "epsilon must decay")]
    fn increasing_epsilon_panics() {
        let _ = EpsilonSchedule::new(0.1, 0.5, 10);
    }
}
