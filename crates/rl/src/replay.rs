//! Experience replay: shared-frame transitions, a bounded ring buffer,
//! and the sharded buffer behind the actor/learner split.
//!
//! Frames are stored as [`Arc<Tensor>`] so consecutive transitions of one
//! lane share a single allocation (transition `t`'s `next_state` *is*
//! transition `t+1`'s `state` — the naive layout stores every observation
//! twice). [`ReplayBuffer::push`] hands the evicted transition back to the
//! caller so rollout loops can recycle its frame buffers instead of
//! re-allocating (see `RolloutWs` in the trainer).

use std::collections::VecDeque;
use std::sync::Arc;

use mramrl_nn::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// One `(s, a, r, s', terminal)` tuple — the data unit of Eq. 1.
///
/// States are shared frames: clone a `Transition` and you copy two `Arc`
/// pointers, not two images.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State (depth image), shared with the previous transition of the
    /// same lane.
    pub state: Arc<Tensor>,
    /// Action index taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Next state, shared with the following transition of the same lane
    /// (unless this transition is terminal).
    pub next_state: Arc<Tensor>,
    /// `true` if the transition ended the episode (crash).
    pub terminal: bool,
}

/// A batch of transitions packed into batch-first tensors, ready for
/// [`crate::QAgent::accumulate_td_batch`].
///
/// `states`/`next_states` are `[N, ...]` (sample `i` is transition `i`);
/// the scalar fields are parallel vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionBatch {
    /// Batched states `[N, ...]`.
    pub states: Tensor,
    /// Actions taken, per sample.
    pub actions: Vec<usize>,
    /// Rewards received, per sample.
    pub rewards: Vec<f32>,
    /// Batched next states `[N, ...]`.
    pub next_states: Tensor,
    /// Episode-terminal flags, per sample.
    pub terminals: Vec<bool>,
}

impl TransitionBatch {
    /// Packs transitions into one batch (states stacked along a new
    /// leading axis).
    ///
    /// # Panics
    ///
    /// Panics if `ts` is empty or the state shapes disagree.
    pub fn from_transitions(ts: &[&Transition]) -> Self {
        assert!(!ts.is_empty(), "cannot batch zero transitions");
        let mut batch = Self::zeros(ts.len(), ts[0].state.shape());
        for (i, t) in ts.iter().enumerate() {
            batch.set(i, t);
        }
        batch
    }

    /// Allocates an `n`-slot batch of zeroed frames shaped `state_shape`,
    /// to be filled in place with [`TransitionBatch::set`] — the
    /// steady-state path allocates once and overwrites forever.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zeros(n: usize, state_shape: &[usize]) -> Self {
        assert!(n > 0, "cannot batch zero transitions");
        let mut batched_shape = Vec::with_capacity(state_shape.len() + 1);
        batched_shape.push(n);
        batched_shape.extend_from_slice(state_shape);
        Self {
            states: Tensor::zeros(&batched_shape),
            actions: vec![0; n],
            rewards: vec![0.0; n],
            next_states: Tensor::zeros(&batched_shape),
            terminals: vec![false; n],
        }
    }

    /// Overwrites slot `i` with `t`. No allocation: frame data is copied
    /// into the existing batch tensors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the frame shapes disagree with
    /// the batch's.
    pub fn set(&mut self, i: usize, t: &Transition) {
        self.states.sample_mut(i).copy_from_slice(t.state.data());
        self.next_states
            .sample_mut(i)
            .copy_from_slice(t.next_state.data());
        self.actions[i] = t.action;
        self.rewards[i] = t.reward;
        self.terminals[i] = t.terminal;
    }

    /// Number of transitions in the batch.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `false` always (construction forbids empty batches).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A bounded ring buffer of transitions with uniform sampling.
///
/// Internally a [`VecDeque`]: `push` appends at the back and pops the
/// front when full, so the deque order *is* the age order — no manual
/// ring arithmetic. [`ReplayBuffer::latest`] is simply the back element
/// and [`ReplayBuffer::iter`] walks oldest → newest.
///
/// # Examples
///
/// ```
/// use mramrl_rl::{ReplayBuffer, Transition};
/// use mramrl_nn::Tensor;
/// use std::sync::Arc;
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: Arc::new(Tensor::filled(&[1], i as f32)),
///         action: 0,
///         reward: 0.0,
///         next_state: Arc::new(Tensor::zeros(&[1])),
///         terminal: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// assert_eq!(buf.latest().unwrap().state.data()[0], 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: VecDeque<Transition>,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            items: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting and returning the oldest when full.
    ///
    /// The returned transition lets the caller recycle its frame
    /// allocations (`Arc::try_unwrap` succeeds once no younger transition
    /// shares the frame).
    pub fn push(&mut self, t: Transition) -> Option<Transition> {
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(t);
        evicted
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The transition at age-order index `i` (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&Transition> {
        self.items.get(i)
    }

    /// Transitions oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.items.iter()
    }

    /// Uniformly samples one transition.
    pub fn sample<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Transition> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Uniformly samples `n` transitions **with replacement** (the
    /// batched analogue of `n` serial [`ReplayBuffer::sample`] calls —
    /// draws use the same RNG stream, one per sample).
    pub fn sample_batch<'a>(&'a self, rng: &mut SmallRng, n: usize) -> Option<Vec<&'a Transition>> {
        if self.items.is_empty() || n == 0 {
            None
        } else {
            Some(
                (0..n)
                    .map(|_| &self.items[rng.gen_range(0..self.items.len())])
                    .collect(),
            )
        }
    }

    /// Samples `n` transitions and packs them into a [`TransitionBatch`].
    pub fn sample_as_batch(&self, rng: &mut SmallRng, n: usize) -> Option<TransitionBatch> {
        self.sample_batch(rng, n)
            .map(|ts| TransitionBatch::from_transitions(&ts))
    }

    /// The most recently pushed transition.
    pub fn latest(&self) -> Option<&Transition> {
        self.items.back()
    }
}

/// The replay half of the actor/learner split: one [`ReplayBuffer`]
/// shard per rollout fleet, merged for sampling by a **fixed-order map**
/// instead of a lock.
///
/// Fleet `f` pushes only into shard `f`, so the push path has no
/// cross-fleet coordination at all. The learner samples through
/// [`ShardedReplay::merged_get`], which presents the shards as a
/// single buffer ordered exactly as the **pinned serial interleaving**
/// would have pushed it — per round, fleet 0's `lanes` transitions, then
/// fleet 1's, and so on:
///
/// ```text
/// merged j  →  round = j / (S·k),  shard = (j mod S·k) / k,  lane = j mod k
///              shard-local index = round·k + lane        (S shards, k lanes)
/// ```
///
/// Because every fleet pushes the same number of transitions per round
/// and per-shard capacities are a multiple of `lanes`, all shards evict
/// whole rounds in lockstep and the merged view at any round boundary is
/// byte-identical (contents *and* order) to one buffer of capacity
/// `S·shard_capacity` fed by the serial interleaving — see
/// `docs/training.md` and the `sharded_replay` proptest suite.
///
/// The single-shard case is the identity map for any capacity, so the
/// one-fleet trainer keeps its historical replay semantics bit-for-bit.
#[derive(Debug, Clone)]
pub struct ShardedReplay {
    shards: Vec<ReplayBuffer>,
    lanes: usize,
}

impl ShardedReplay {
    /// Creates `n_shards` shards of `shard_capacity` transitions each,
    /// fed by fleets of `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, or if `n_shards > 1` and
    /// `shard_capacity` is not a multiple of `lanes` (lockstep eviction
    /// needs whole-round shards; see [`ShardedReplay::for_fleets`]).
    pub fn new(n_shards: usize, shard_capacity: usize, lanes: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(lanes > 0, "need at least one lane");
        assert!(
            n_shards == 1 || shard_capacity % lanes == 0,
            "multi-shard capacity must be a whole number of rounds \
             (shard_capacity {shard_capacity} % lanes {lanes} != 0)"
        );
        Self {
            shards: (0..n_shards)
                .map(|_| ReplayBuffer::new(shard_capacity))
                .collect(),
            lanes,
        }
    }

    /// Sizes shards from a total-capacity budget: `total_capacity`
    /// split over `n_shards`, rounded **down** to whole rounds of
    /// `lanes` (min one round) when sharded. One shard keeps the budget
    /// verbatim — the single-fleet trainer's historical semantics.
    pub fn for_fleets(total_capacity: usize, n_shards: usize, lanes: usize) -> Self {
        let per = if n_shards == 1 {
            total_capacity.max(1)
        } else {
            (total_capacity / n_shards / lanes).max(1) * lanes
        };
        Self::new(n_shards, per, lanes)
    }

    /// Number of shards (= fleets).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Lanes per fleet.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Read access to shard `f`.
    pub fn shard(&self, f: usize) -> &ReplayBuffer {
        &self.shards[f]
    }

    /// Pushes fleet `f`'s transition into shard `f` — no other shard is
    /// touched. Returns the shard's evicted transition, if any, for
    /// frame recycling.
    pub fn push(&mut self, f: usize, t: Transition) -> Option<Transition> {
        self.shards[f].push(t)
    }

    /// Total transitions across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(ReplayBuffer::len).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ReplayBuffer::is_empty)
    }

    /// The transition at merged index `j` under the fixed-order map (see
    /// the type docs). Index 0 is the oldest surviving round's fleet-0
    /// lane-0 transition.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the shards are not round-aligned
    /// (unequal lengths — the trainer's symmetric push schedule keeps
    /// them aligned at every sampling point).
    pub fn merged_get(&self, j: usize) -> Option<&Transition> {
        let s = self.shards.len();
        if s == 1 {
            return self.shards[0].get(j);
        }
        debug_assert!(
            self.shards.iter().all(|b| b.len() == self.shards[0].len()),
            "merged view requires round-aligned shards"
        );
        let per_round = s * self.lanes;
        let (round, rest) = (j / per_round, j % per_round);
        let (shard, lane) = (rest / self.lanes, rest % self.lanes);
        self.shards[shard].get(round * self.lanes + lane)
    }

    /// Draws `n` merged indices with replacement into `out` (cleared
    /// first) — one `gen_range(0..len)` per draw, the **same RNG stream**
    /// a single [`ReplayBuffer::sample_batch`] of the merged buffer
    /// would consume. Leaves `out` empty when the buffer is empty.
    pub fn sample_indices(&self, rng: &mut SmallRng, n: usize, out: &mut Vec<usize>) {
        out.clear();
        let len = self.len();
        if len == 0 {
            return;
        }
        out.extend((0..n).map(|_| rng.gen_range(0..len)));
    }

    /// Uniformly samples `n` transitions with replacement through the
    /// merged view (the sharded analogue of
    /// [`ReplayBuffer::sample_batch`]).
    pub fn sample_merged<'a>(
        &'a self,
        rng: &mut SmallRng,
        n: usize,
    ) -> Option<Vec<&'a Transition>> {
        if self.is_empty() || n == 0 {
            return None;
        }
        let len = self.len();
        Some(
            (0..n)
                .map(|_| self.merged_get(rng.gen_range(0..len)).expect("aligned"))
                .collect(),
        )
    }

    /// Copies the transitions at `indices` (merged view) into `batch`
    /// slots `0..indices.len()` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != batch.len()` or an index is out of
    /// range.
    pub fn fill_batch(&self, indices: &[usize], batch: &mut TransitionBatch) {
        assert_eq!(indices.len(), batch.len(), "index/batch size mismatch");
        for (slot, &j) in indices.iter().enumerate() {
            let t = self
                .merged_get(j)
                .unwrap_or_else(|| panic!("merged index {j} out of range"));
            batch.set(slot, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition {
            state: Arc::new(Tensor::filled(&[1], v)),
            action: 0,
            reward: v,
            next_state: Arc::new(Tensor::zeros(&[1])),
            terminal: false,
        }
    }

    #[test]
    fn ring_eviction_keeps_newest_and_returns_evicted() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..3 {
            assert!(buf.push(t(i as f32)).is_none());
        }
        for i in 3..5 {
            let evicted = buf.push(t(i as f32)).expect("full buffer must evict");
            assert_eq!(evicted.reward, (i - 3) as f32);
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f32> = buf.iter().map(|x| x.reward).collect();
        // 0,1 evicted; 2,3,4 remain — and iter() is oldest → newest.
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn wraparound_at_exactly_capacity() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.latest().unwrap().reward, 3.0);
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![0.0, 1.0, 2.0, 3.0]
        );
        // The push that triggers the first eviction.
        buf.push(t(4.0));
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.latest().unwrap().reward, 4.0);
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn wraparound_far_past_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..17 {
            buf.push(t(i as f32));
            assert_eq!(buf.latest().unwrap().reward, i as f32);
            assert!(buf.len() <= 3);
        }
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![14.0, 15.0, 16.0]
        );
    }

    #[test]
    fn latest_is_last_pushed() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..7 {
            buf.push(t(i as f32));
            assert_eq!(buf.latest().unwrap().reward, i as f32);
        }
    }

    #[test]
    fn get_walks_age_order() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.get(0).unwrap().reward, 2.0);
        assert_eq!(buf.get(2).unwrap().reward, 4.0);
        assert!(buf.get(3).is_none());
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(buf.sample(&mut rng).unwrap().reward as i32);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn sample_batch_matches_serial_draws() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let batch = buf.sample_batch(&mut rng_a, 5).unwrap();
        let serial: Vec<&Transition> = (0..5).map(|_| buf.sample(&mut rng_b).unwrap()).collect();
        for (a, b) in batch.iter().zip(&serial) {
            assert_eq!(a.reward, b.reward);
        }
    }

    #[test]
    fn batch_packing_is_batch_major() {
        let a = t(1.0);
        let b = t(2.0);
        let batch = TransitionBatch::from_transitions(&[&a, &b]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.states.shape(), &[2, 1]);
        assert_eq!(batch.states.data(), &[1.0, 2.0]);
        assert_eq!(batch.rewards, vec![1.0, 2.0]);
        assert!(!batch.is_empty());
    }

    #[test]
    fn batch_set_overwrites_in_place() {
        let a = t(1.0);
        let b = t(2.0);
        let mut batch = TransitionBatch::zeros(2, a.state.shape());
        batch.set(0, &a);
        batch.set(1, &b);
        assert_eq!(batch, TransitionBatch::from_transitions(&[&a, &b]));
        batch.set(0, &b);
        assert_eq!(batch.states.data(), &[2.0, 2.0]);
    }

    #[test]
    fn empty_buffer_samples_none() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(buf.sample(&mut rng).is_none());
        assert!(buf.sample_batch(&mut rng, 3).is_none());
        assert!(buf.latest().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn single_shard_merge_is_identity() {
        let mut sharded = ShardedReplay::for_fleets(5, 1, 2);
        let mut single = ReplayBuffer::new(5);
        for i in 0..9 {
            sharded.push(0, t(i as f32));
            single.push(t(i as f32));
        }
        assert_eq!(sharded.len(), single.len());
        for j in 0..single.len() {
            assert_eq!(
                sharded.merged_get(j).unwrap().reward,
                single.get(j).unwrap().reward
            );
        }
    }

    #[test]
    fn merged_order_is_round_major_fleet_order() {
        // 2 fleets × 2 lanes, capacity 1 round per shard is too tight to
        // see ordering — use 2 rounds. Reward encodes (round, fleet, lane)
        // as r*100 + f*10 + lane.
        let mut sharded = ShardedReplay::new(2, 4, 2);
        for round in 0..2 {
            for fleet in 0..2 {
                for lane in 0..2 {
                    sharded.push(fleet, t((round * 100 + fleet * 10 + lane) as f32));
                }
            }
        }
        let merged: Vec<f32> = (0..sharded.len())
            .map(|j| sharded.merged_get(j).unwrap().reward)
            .collect();
        assert_eq!(
            merged,
            vec![0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]
        );
    }

    #[test]
    fn sharded_push_evicts_per_shard() {
        let mut sharded = ShardedReplay::new(2, 2, 1);
        assert!(sharded.push(0, t(0.0)).is_none());
        assert!(sharded.push(0, t(1.0)).is_none());
        // Shard 0 full; shard 1 untouched.
        let evicted = sharded.push(0, t(2.0)).expect("shard 0 evicts");
        assert_eq!(evicted.reward, 0.0);
        assert!(sharded.push(1, t(3.0)).is_none());
        assert_eq!(sharded.shard(0).len(), 2);
        assert_eq!(sharded.shard(1).len(), 1);
    }

    #[test]
    fn for_fleets_rounds_capacity_to_whole_rounds() {
        let s = ShardedReplay::for_fleets(100, 4, 3);
        // 100 / 4 = 25 per shard, rounded down to 24 = 8 rounds of 3.
        assert_eq!(s.shard(0).capacity(), 24);
        // One shard keeps the budget verbatim.
        let one = ShardedReplay::for_fleets(100, 1, 3);
        assert_eq!(one.shard(0).capacity(), 100);
    }

    #[test]
    fn sample_indices_matches_sample_batch_stream() {
        let mut sharded = ShardedReplay::new(1, 8, 1);
        for i in 0..8 {
            sharded.push(0, t(i as f32));
        }
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let mut idx = Vec::new();
        sharded.sample_indices(&mut rng_a, 5, &mut idx);
        let via_buffer = sharded.shard(0).sample_batch(&mut rng_b, 5).unwrap();
        let via_idx: Vec<f32> = idx
            .iter()
            .map(|&j| sharded.merged_get(j).unwrap().reward)
            .collect();
        let direct: Vec<f32> = via_buffer.iter().map(|x| x.reward).collect();
        assert_eq!(via_idx, direct);
    }

    #[test]
    fn fill_batch_copies_selected_transitions() {
        let mut sharded = ShardedReplay::new(2, 2, 1);
        for fleet in 0..2 {
            for round in 0..2 {
                sharded.push(fleet, t((round * 10 + fleet) as f32));
            }
        }
        let mut batch = TransitionBatch::zeros(3, &[1]);
        sharded.fill_batch(&[0, 3, 2], &mut batch);
        // Merged order: [r0f0, r0f1, r1f0, r1f1] = [0, 1, 10, 11].
        assert_eq!(batch.rewards, vec![0.0, 11.0, 10.0]);
    }
}
