//! Experience replay.

use std::collections::VecDeque;

use mramrl_nn::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// One `(s, a, r, s', terminal)` tuple — the data unit of Eq. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State (depth image).
    pub state: Tensor,
    /// Action index taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Next state.
    pub next_state: Tensor,
    /// `true` if the transition ended the episode (crash).
    pub terminal: bool,
}

/// A batch of transitions packed into batch-first tensors, ready for
/// [`crate::QAgent::accumulate_td_batch`].
///
/// `states`/`next_states` are `[N, ...]` (sample `i` is transition `i`);
/// the scalar fields are parallel vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionBatch {
    /// Batched states `[N, ...]`.
    pub states: Tensor,
    /// Actions taken, per sample.
    pub actions: Vec<usize>,
    /// Rewards received, per sample.
    pub rewards: Vec<f32>,
    /// Batched next states `[N, ...]`.
    pub next_states: Tensor,
    /// Episode-terminal flags, per sample.
    pub terminals: Vec<bool>,
}

impl TransitionBatch {
    /// Packs transitions into one batch (states stacked along a new
    /// leading axis).
    ///
    /// # Panics
    ///
    /// Panics if `ts` is empty or the state shapes disagree.
    pub fn from_transitions(ts: &[&Transition]) -> Self {
        assert!(!ts.is_empty(), "cannot batch zero transitions");
        let shape = ts[0].state.shape();
        let mut batched_shape = Vec::with_capacity(shape.len() + 1);
        batched_shape.push(ts.len());
        batched_shape.extend_from_slice(shape);

        let mut states = Vec::with_capacity(ts.len() * ts[0].state.len());
        let mut next_states = Vec::with_capacity(ts.len() * ts[0].next_state.len());
        for t in ts {
            assert_eq!(t.state.shape(), shape, "transition state shapes differ");
            assert_eq!(
                t.next_state.shape(),
                shape,
                "transition next-state shapes differ"
            );
            states.extend_from_slice(t.state.data());
            next_states.extend_from_slice(t.next_state.data());
        }
        Self {
            states: Tensor::from_vec(&batched_shape, states),
            actions: ts.iter().map(|t| t.action).collect(),
            rewards: ts.iter().map(|t| t.reward).collect(),
            next_states: Tensor::from_vec(&batched_shape, next_states),
            terminals: ts.iter().map(|t| t.terminal).collect(),
        }
    }

    /// Number of transitions in the batch.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `false` always (construction forbids empty batches).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A bounded ring buffer of transitions with uniform sampling.
///
/// Internally a [`VecDeque`]: `push` appends at the back and pops the
/// front when full, so the deque order *is* the age order — no manual
/// ring arithmetic. [`ReplayBuffer::latest`] is simply the back element
/// and [`ReplayBuffer::iter`] walks oldest → newest.
///
/// # Examples
///
/// ```
/// use mramrl_rl::{ReplayBuffer, Transition};
/// use mramrl_nn::Tensor;
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: Tensor::filled(&[1], i as f32),
///         action: 0,
///         reward: 0.0,
///         next_state: Tensor::zeros(&[1]),
///         terminal: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// assert_eq!(buf.latest().unwrap().state.data()[0], 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: VecDeque<Transition>,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            items: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Transitions oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.items.iter()
    }

    /// Uniformly samples one transition.
    pub fn sample<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Transition> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Uniformly samples `n` transitions **with replacement** (the
    /// batched analogue of `n` serial [`ReplayBuffer::sample`] calls —
    /// draws use the same RNG stream, one per sample).
    pub fn sample_batch<'a>(&'a self, rng: &mut SmallRng, n: usize) -> Option<Vec<&'a Transition>> {
        if self.items.is_empty() || n == 0 {
            None
        } else {
            Some(
                (0..n)
                    .map(|_| &self.items[rng.gen_range(0..self.items.len())])
                    .collect(),
            )
        }
    }

    /// Samples `n` transitions and packs them into a [`TransitionBatch`].
    pub fn sample_as_batch(&self, rng: &mut SmallRng, n: usize) -> Option<TransitionBatch> {
        self.sample_batch(rng, n)
            .map(|ts| TransitionBatch::from_transitions(&ts))
    }

    /// The most recently pushed transition.
    pub fn latest(&self) -> Option<&Transition> {
        self.items.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition {
            state: Tensor::filled(&[1], v),
            action: 0,
            reward: v,
            next_state: Tensor::zeros(&[1]),
            terminal: false,
        }
    }

    #[test]
    fn ring_eviction_keeps_newest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f32> = buf.iter().map(|x| x.reward).collect();
        // 0,1 evicted; 2,3,4 remain — and iter() is oldest → newest.
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn wraparound_at_exactly_capacity() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.latest().unwrap().reward, 3.0);
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![0.0, 1.0, 2.0, 3.0]
        );
        // The push that triggers the first eviction.
        buf.push(t(4.0));
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.latest().unwrap().reward, 4.0);
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn wraparound_far_past_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..17 {
            buf.push(t(i as f32));
            assert_eq!(buf.latest().unwrap().reward, i as f32);
            assert!(buf.len() <= 3);
        }
        assert_eq!(
            buf.iter().map(|x| x.reward).collect::<Vec<_>>(),
            vec![14.0, 15.0, 16.0]
        );
    }

    #[test]
    fn latest_is_last_pushed() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..7 {
            buf.push(t(i as f32));
            assert_eq!(buf.latest().unwrap().reward, i as f32);
        }
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(buf.sample(&mut rng).unwrap().reward as i32);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn sample_batch_matches_serial_draws() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let batch = buf.sample_batch(&mut rng_a, 5).unwrap();
        let serial: Vec<&Transition> = (0..5).map(|_| buf.sample(&mut rng_b).unwrap()).collect();
        for (a, b) in batch.iter().zip(&serial) {
            assert_eq!(a.reward, b.reward);
        }
    }

    #[test]
    fn batch_packing_is_batch_major() {
        let a = t(1.0);
        let b = t(2.0);
        let batch = TransitionBatch::from_transitions(&[&a, &b]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.states.shape(), &[2, 1]);
        assert_eq!(batch.states.data(), &[1.0, 2.0]);
        assert_eq!(batch.rewards, vec![1.0, 2.0]);
        assert!(!batch.is_empty());
    }

    #[test]
    fn empty_buffer_samples_none() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(buf.sample(&mut rng).is_none());
        assert!(buf.sample_batch(&mut rng, 3).is_none());
        assert!(buf.latest().is_none());
        assert!(buf.is_empty());
    }
}
