//! Experience replay.

use mramrl_nn::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// One `(s, a, r, s', terminal)` tuple — the data unit of Eq. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State (depth image).
    pub state: Tensor,
    /// Action index taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Next state.
    pub next_state: Tensor,
    /// `true` if the transition ended the episode (crash).
    pub terminal: bool,
}

/// A bounded ring buffer of transitions with uniform sampling.
///
/// # Examples
///
/// ```
/// use mramrl_rl::{ReplayBuffer, Transition};
/// use mramrl_nn::Tensor;
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: Tensor::filled(&[1], i as f32),
///         action: 0,
///         reward: 0.0,
///         next_state: Tensor::zeros(&[1]),
///         terminal: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Inserts a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Uniformly samples one transition.
    pub fn sample<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Transition> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// The most recently pushed transition.
    pub fn latest(&self) -> Option<&Transition> {
        if self.items.is_empty() {
            None
        } else if self.items.len() < self.capacity {
            self.items.last()
        } else {
            let idx = (self.next + self.capacity - 1) % self.capacity;
            Some(&self.items[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition {
            state: Tensor::filled(&[1], v),
            action: 0,
            reward: v,
            next_state: Tensor::zeros(&[1]),
            terminal: false,
        }
    }

    #[test]
    fn ring_eviction_keeps_newest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f32> = buf.items.iter().map(|x| x.reward).collect();
        // 0,1 evicted; 2,3,4 remain (in ring order 3,4,2).
        let mut sorted = rewards.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn latest_is_last_pushed() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..7 {
            buf.push(t(i as f32));
            assert_eq!(buf.latest().unwrap().reward, i as f32);
        }
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(buf.sample(&mut rng).unwrap().reward as i32);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn empty_buffer_samples_none() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(buf.sample(&mut rng).is_none());
        assert!(buf.latest().is_none());
        assert!(buf.is_empty());
    }
}
