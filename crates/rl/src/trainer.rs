//! The online training loop (TL phase and deployment phase share it).
//!
//! Three drivers share the configuration: [`Trainer::run`] steps one
//! [`DroneEnv`] serially (the paper's §V "one image at a time" platform
//! model), [`Trainer::run_vec`] steps a [`VecEnv`] of `K` lanes with
//! every hot pass batched, and [`Trainer::run_parallel`] is the
//! actor/learner architecture: `N` rollout fleets (each a `VecEnv`,
//! optionally acting in [`ActingPrecision::FixedQ8_8`] deployment
//! precision from a periodically refreshed snapshot) feed a
//! [`ShardedReplay`] — one shard per fleet, no cross-fleet coordination
//! on the push path — and one batched learner drains the shards on a
//! **deterministic schedule**: a fixed-order transition merge and a
//! pinned sampling/update interleaving, the same bit-identity
//! discipline as the pool combinators. `run_vec` *is* the one-fleet
//! case of that schedule, so the whole family reduces to one engine.
//!
//! The pinned schedule (see `docs/training.md` for the proof sketch):
//! per round, the learner first drains the previous round's replay
//! state (sample indices are pre-drawn from the single RNG), then the
//! actors run one fused `N·K`-wide forward, choose ε-greedy actions
//! fleet-major, step all lanes in one pooled scatter and push
//! fleet-major into their shards. This is a *rotation* of the classic
//! act-then-learn round, so `run_parallel(1 fleet)` is bit-identical to
//! `run_vec`, which is bit-identical (at `K = 1`) to `run` — and the
//! merged shard order equals the serial interleaving's single buffer.
//!
//! With `TrainerConfig::backend = GemmBackend::Threaded` and more than
//! one executor on the persistent `mramrl_nn::pool`, the whole vec-step
//! runs multi-core: lane rendering fans out inside [`VecEnv::step`] /
//! [`mramrl_env::step_fleets`], the TD batch's per-sample conv passes
//! and GEMM row bands fan out inside the layers, and the agent overlaps
//! its independent target/online forwards. In deployment-precision
//! acting the trainer additionally overlaps the learner's float update
//! with the actors' Q8.8 forward (disjoint nets — the snapshot is
//! frozen), all bit-identical to the serial schedule at any
//! `NN_POOL_THREADS` (see `docs/threading.md`).

use std::sync::Arc;
use std::time::Instant;

use mramrl_env::{step_fleets, Action, DroneEnv, EnvKind, Image, ScenarioSpec, VecEnv};
use mramrl_nn::{GemmBackend, QWorkspace, QuantizedNet, Sgd, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::agent::{ActingPrecision, QAgent};
use crate::metrics::{MovingAverage, SafeFlightTracker};
use crate::policy::EpsilonSchedule;
use crate::replay::{ReplayBuffer, ShardedReplay, Transition, TransitionBatch};

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Total environment steps (= training images, the paper's
    /// "iterations"), summed across all lanes of all fleets.
    pub iters: u64,
    /// Images per weight update (the paper's batch size N, Fig. 3(b)).
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Per-element gradient clip.
    pub grad_clip: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Replay capacity (transitions, total across shards; the sharded
    /// drivers round each shard down to whole rounds — see
    /// [`ShardedReplay::for_fleets`]).
    pub replay_capacity: usize,
    /// Target-network sync period, in weight updates.
    pub target_sync: u64,
    /// Moving-average window for the cumulative-reward curve.
    pub metrics_window: usize,
    /// Emit one curve point per this many iterations.
    pub log_every: u64,
    /// RNG seed for exploration/replay sampling.
    pub seed: u64,
    /// GEMM backend for every network product in the run (both the online
    /// and target nets). Defaults to [`mramrl_nn::backend::default_backend`],
    /// i.e. the `NN_GEMM_BACKEND` env knob.
    pub backend: GemmBackend,
    /// Environment lanes **per fleet** for the vectorized drivers:
    /// [`Trainer::build_vec_env`] and [`Trainer::build_fleets`] size
    /// their fleets from this, and the learner's TD batches are one
    /// transition per lane per round. The serial [`Trainer::run`]
    /// ignores it. Default 1.
    pub num_envs: usize,
    /// Datapath the rollout actors of [`Trainer::run_parallel`] select
    /// actions on. [`ActingPrecision::Float32`] acts on the live online
    /// network; [`ActingPrecision::FixedQ8_8`] acts through a frozen
    /// Q8.8 snapshot refreshed every [`TrainerConfig::snapshot_refresh`]
    /// weight updates — the software mirror of a drone fleet running the
    /// 16-bit silicon datapath while a basestation learner trains in
    /// float. TD math is always float. Default `Float32` (which keeps
    /// `run_vec`'s historical trajectories bit-for-bit).
    pub actor_precision: ActingPrecision,
    /// Deployment-precision actors re-snapshot the online network every
    /// this many weight updates (ignored under `Float32` acting). The
    /// refresh happens at the learner's phase boundary, so it is part of
    /// the pinned schedule — determinism stays seed-only. Default 16.
    pub snapshot_refresh: u64,
}

impl TrainerConfig {
    /// Defaults for an online deployment run of `iters` steps: batch 4
    /// (the paper's headline fps operating point), transfer-style low
    /// exploration, metrics window scaled like the paper's (15000/60000
    /// of the run length).
    pub fn online(iters: u64, seed: u64) -> Self {
        Self {
            iters,
            batch_size: 4,
            lr: 2e-3,
            grad_clip: 1.0,
            gamma: 0.95,
            epsilon: EpsilonSchedule::transfer((iters / 2).max(1)),
            replay_capacity: 2048,
            target_sync: 64,
            metrics_window: ((iters as usize) / 4).max(16),
            log_every: (iters / 64).max(1),
            seed,
            backend: mramrl_nn::backend::default_backend(),
            num_envs: 1,
            actor_precision: ActingPrecision::Float32,
            snapshot_refresh: 16,
        }
    }

    /// Defaults for the from-scratch TL (meta-environment) phase.
    pub fn transfer_learning(iters: u64, seed: u64) -> Self {
        Self {
            epsilon: EpsilonSchedule::scratch((iters * 2 / 3).max(1)),
            lr: 3e-3,
            ..Self::online(iters, seed)
        }
    }
}

/// One sampled point of the Fig. 10 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Iteration index.
    pub iter: u64,
    /// Cumulative reward (moving average of rewards).
    pub cumulative_reward: f32,
    /// Return (moving average of per-episode mean rewards).
    pub avg_return: f32,
}

/// The result of one training run.
#[derive(Debug, Clone)]
pub struct TrainLog {
    /// Sampled learning curves.
    pub curve: Vec<CurvePoint>,
    /// Completed episodes (crashes).
    pub episodes: u64,
    /// Post-convergence safe flight distance (metres): mean over the last
    /// third of episodes.
    pub sfd: f32,
    /// Mean SFD over all episodes.
    pub sfd_overall: f32,
    /// Final cumulative reward.
    pub final_reward: f32,
}

/// Wall-clock and allocation accounting for one
/// [`Trainer::run_parallel_timed`] run — the instrument behind the
/// learner-bound vs actor-bound regime cells in `BENCH_batch.json`.
///
/// Under the overlapped deployment-precision schedule the phase times
/// are measured per role (inside each closure), so `learner_ns` vs
/// `actor_ns + env_ns` compares how much work each side did — the
/// bound-ness signal — rather than partitioning wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Nanoseconds in the actors' action-selection (batched Q forward +
    /// ε-greedy choice).
    pub actor_ns: u64,
    /// Nanoseconds stepping environments (pooled lane scatter).
    pub env_ns: u64,
    /// Nanoseconds in the learner (batch fill, TD accumulation, weight
    /// updates, target syncs, hooks excluded).
    pub learner_ns: u64,
    /// Environment transitions generated (= iterations run, rounded up
    /// to whole rounds).
    pub transitions: u64,
    /// Weight updates applied.
    pub updates: u64,
    /// Times the deployment-precision actor snapshot was refreshed.
    pub snapshot_refreshes: u64,
    /// Fresh frame-buffer allocations in the rollout path. Bounded by
    /// the replay high-water mark: once the frame pool warms up, evicted
    /// transitions recycle their buffers and this stops growing — the
    /// rollout analogue of `Workspace::footprint()` stability, pinned by
    /// the footprint test.
    pub frame_allocs: u64,
}

/// Observer of the learner's target-sync boundaries in
/// [`Trainer::run_parallel_hooked`].
///
/// The hook fires immediately after a weight update crossed
/// `target_sync` and copied the online weights into the target network
/// — the natural publish point for serving layers
/// (`mramrl_serve::LearnerPublisher` pushes
/// [`QAgent::quantized_snapshot_shared`] into a `SnapshotStore` here).
/// It runs at the pinned phase boundary, outside any overlap, and must
/// not mutate weights if bit-identity with the unhooked run is to hold
/// (reading, or building the agent's cached Q8.8 snapshot, is fine).
pub trait LearnerHook {
    /// Called after update number `updates` synced the target network.
    fn on_target_sync(&mut self, agent: &mut QAgent, updates: u64);

    /// Called at the end of every learner phase with the cumulative
    /// weight-update count — including rounds that applied no update.
    /// This is the metering boundary for write-stream observers
    /// (`EnduranceScheduler` models one NVM write-back burst per update
    /// here); like [`LearnerHook::on_target_sync`], it runs outside any
    /// overlap and must not mutate the agent. The default does nothing.
    fn on_round(&mut self, updates: u64) {
        let _ = updates;
    }
}

/// The no-op hook: plain training.
impl LearnerHook for () {
    fn on_target_sync(&mut self, _agent: &mut QAgent, _updates: u64) {}
}

/// Caller-owned rollout workspace: the actor side's persistent buffers.
///
/// Kills the per-vec-step allocations the old `run_vec` made
/// (`stack_observations` rebuilt the `[K,C,H,W]` batch and `to_tensor`
/// heap-allocated one frame per lane per step): observations are written
/// in place into one batched tensor, Q-values land in a reused output,
/// and frame buffers cycle through a free pool fed by replay evictions
/// (`Arc::try_unwrap` on the evicted transition's frames).
struct RolloutWs {
    /// Batched observations `[lanes, 1, H, W]`, overwritten in place.
    obs: Tensor,
    /// Batched Q-values `[lanes, actions]`, overwritten in place.
    q: Tensor,
    /// Per-lane handle to the frame currently in `obs` (becomes the next
    /// transition's `state`).
    prev: Vec<Arc<Tensor>>,
    /// Recycled frame buffers.
    free: Vec<Tensor>,
    frame_shape: [usize; 3],
    frame_allocs: u64,
}

impl RolloutWs {
    /// Resets every fleet and builds the workspace from the first
    /// observations (all lanes must share one camera geometry).
    fn init(fleets: &mut [VecEnv]) -> Self {
        let mut first: Vec<Image> = Vec::new();
        for fl in fleets.iter_mut() {
            first.extend(fl.reset_all());
        }
        let lanes = first.len();
        let (h, w) = (first[0].height(), first[0].width());
        let mut ws = Self {
            obs: Tensor::zeros(&[lanes, 1, h, w]),
            q: Tensor::zeros(&[1]),
            prev: Vec::with_capacity(lanes),
            free: Vec::new(),
            frame_shape: [1, h, w],
            frame_allocs: 0,
        };
        for (lane, img) in first.iter().enumerate() {
            ws.obs.sample_mut(lane).copy_from_slice(img.data());
            let frame = ws.frame(img.data());
            ws.prev.push(frame);
        }
        ws
    }

    /// A shared frame holding `data`: reuses a pooled buffer when one is
    /// free, allocates (and counts) otherwise.
    fn frame(&mut self, data: &[f32]) -> Arc<Tensor> {
        let mut t = match self.free.pop() {
            Some(t) => t,
            None => {
                self.frame_allocs += 1;
                Tensor::zeros(&self.frame_shape)
            }
        };
        t.data_mut().copy_from_slice(data);
        Arc::new(t)
    }

    /// Returns an evicted transition's frames to the pool (each frame
    /// comes back once its last sharing transition is evicted).
    fn recycle(&mut self, t: Transition) {
        for arc in [t.state, t.next_state] {
            if let Ok(tensor) = Arc::try_unwrap(arc) {
                self.free.push(tensor);
            }
        }
    }
}

/// The learner phase of the pinned schedule: fill the TD batch from the
/// merged shard view at the pre-drawn `idx`, accumulate, and apply a
/// weight update when `batch_size` gradients have built up. Returns
/// `true` when that update also synced the target network. Consumes no
/// RNG (the indices are drawn by the caller, keeping the single stream
/// valid under overlap) and is a no-op while the replay is empty
/// (`idx` empty).
#[allow(clippy::too_many_arguments)]
fn learner_phase(
    agent: &mut QAgent,
    sgd: &Sgd,
    cfg: &TrainerConfig,
    replay: &ShardedReplay,
    idx: &[usize],
    batch: &mut Option<TransitionBatch>,
    accumulated: &mut usize,
    updates: &mut u64,
) -> bool {
    if idx.is_empty() {
        return false;
    }
    let b = batch.get_or_insert_with(|| {
        let shape = replay
            .merged_get(0)
            .expect("non-empty replay")
            .state
            .shape()
            .to_vec();
        TransitionBatch::zeros(idx.len(), &shape)
    });
    replay.fill_batch(idx, b);
    agent.accumulate_td_batch(b);
    *accumulated += idx.len();
    if *accumulated >= cfg.batch_size {
        let synced = agent.apply_update(sgd, *accumulated, cfg.target_sync);
        *accumulated = 0;
        *updates += 1;
        synced
    } else {
        false
    }
}

/// Runs the Q-learning loop of §II on a [`DroneEnv`].
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `iters`, `batch_size` or `snapshot_refresh` is zero.
    pub fn new(cfg: TrainerConfig) -> Self {
        assert!(cfg.iters > 0 && cfg.batch_size > 0, "empty training run");
        assert!(cfg.snapshot_refresh > 0, "snapshot refresh period is zero");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Builds the [`VecEnv`] this configuration asks for:
    /// [`TrainerConfig::num_envs`] lanes of `kind`, lane `i` seeded
    /// `cfg.seed.wrapping_add(i)` — the canonical way to size the fleet
    /// for [`Trainer::run_vec`].
    ///
    /// # Panics
    ///
    /// Panics if `num_envs` is zero.
    pub fn build_vec_env(&self, kind: EnvKind) -> VecEnv {
        VecEnv::new(kind, self.cfg.seed, self.cfg.num_envs)
    }

    /// Builds `n` rollout fleets of [`TrainerConfig::num_envs`] lanes
    /// each for [`Trainer::run_parallel`]: one flat-seeded `VecEnv` of
    /// `n·num_envs` lanes (global lane `i` seeded
    /// `cfg.seed.wrapping_add(i)`, the same rule as
    /// [`Trainer::build_vec_env`]) split fleet-major, so fleet `f` owns
    /// global lanes `f·num_envs ..`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `num_envs` is zero.
    pub fn build_fleets(&self, kind: EnvKind, n: usize) -> Vec<VecEnv> {
        assert!(n > 0, "need at least one fleet");
        VecEnv::new(kind, self.cfg.seed, self.cfg.num_envs * n).split(n)
    }

    /// [`Trainer::build_fleets`] over a [`ScenarioSpec`]: global lane
    /// `i` is seeded `spec.lane_seed(i)` (the scenario's own rule —
    /// `cfg.seed` is not consulted), so the fleet set covers the
    /// scenario's lane axis exactly as one wide `VecEnv` would.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `num_envs` is zero.
    pub fn build_fleets_from_spec(&self, spec: &ScenarioSpec, n: usize) -> Vec<VecEnv> {
        assert!(n > 0, "need at least one fleet");
        VecEnv::from_spec(spec, self.cfg.num_envs * n).split(n)
    }

    /// Runs the loop: act ε-greedily, record the transition, accumulate
    /// one replayed TD gradient per image, update every `batch_size`
    /// images (§III-D's batched update), log Fig. 10 metrics.
    pub fn run(&self, agent: &mut QAgent, env: &mut DroneEnv) -> TrainLog {
        let cfg = &self.cfg;
        agent.set_gemm_backend(cfg.backend);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
        let sgd = Sgd::new(cfg.lr).with_grad_clip(cfg.grad_clip);
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);

        let mut cum_reward = MovingAverage::new(cfg.metrics_window);
        let mut return_ma = MovingAverage::new((cfg.metrics_window / 64).max(4));
        let mut sfd = SafeFlightTracker::new();
        let mut curve = Vec::new();

        let mut episode_reward_sum = 0.0f32;
        let mut episode_actions = 0u64;
        let mut accumulated = 0usize;
        let mut next_log = 0u64;

        let mut obs = Arc::new(to_tensor(&env.reset()));
        for iter in 0..cfg.iters {
            let q = agent.q_values(&obs);
            let a = cfg.epsilon.choose(&q, iter, &mut rng);
            let step = env.step(Action::from_index(a));
            let next = Arc::new(to_tensor(&step.observation));

            cum_reward.push(step.reward);
            episode_reward_sum += step.reward;
            episode_actions += 1;

            // Frames are shared, not copied: this transition's
            // `next_state` and the next one's `state` are the same Arc.
            replay.push(Transition {
                state: core::mem::replace(&mut obs, Arc::clone(&next)),
                action: a,
                reward: step.reward,
                next_state: next,
                terminal: step.crashed,
            });

            // One TD gradient per image, drawn from replay (decorrelated).
            if let Some(t) = replay.sample(&mut rng) {
                let t = t.clone();
                agent.accumulate_td(&t);
                accumulated += 1;
            }
            if accumulated >= cfg.batch_size {
                agent.apply_update(&sgd, accumulated, cfg.target_sync);
                accumulated = 0;
            }

            if step.crashed {
                return_ma.push(episode_reward_sum / episode_actions.max(1) as f32);
                sfd.record_episode(env.episode_distance());
                episode_reward_sum = 0.0;
                episode_actions = 0;
                obs = Arc::new(to_tensor(&env.reset()));
            }

            // Exactly one curve point per `log_every` window: log the
            // first iteration at or past each window start (for serial
            // stepping, the multiples of `log_every`). End-of-run state
            // lives in `TrainLog::final_reward`, so no extra final
            // point is emitted.
            if iter >= next_log {
                curve.push(CurvePoint {
                    iter,
                    cumulative_reward: cum_reward.value(),
                    avg_return: return_ma.value(),
                });
                next_log = (iter / cfg.log_every + 1) * cfg.log_every;
            }
        }
        // Censored final episode still informs SFD.
        if env.episode_distance() > 0.0 {
            sfd.record_episode(env.episode_distance());
        }

        let episodes = sfd.episodes() as u64;
        let tail = (sfd.episodes() / 3).max(3);
        TrainLog {
            episodes,
            sfd: sfd.tail_mean(tail),
            sfd_overall: sfd.mean(),
            final_reward: cum_reward.value(),
            curve,
        }
    }

    /// The vectorized loop: `K = venv.len()` lanes act together. Each
    /// vec-step runs **one** batched Q forward for action selection
    /// (`[K, ...]` observations), records `K` transitions, accumulates a
    /// `K`-sized replayed TD batch via [`QAgent::accumulate_td_batch`]
    /// (one TD gradient per image, as in the serial loop) and applies the
    /// §III-D batched update once `batch_size` gradients have
    /// accumulated. `iters` counts total environment steps across lanes,
    /// so wall-clock work matches [`Trainer::run`] at equal `iters`.
    ///
    /// Size the `VecEnv` with [`Trainer::build_vec_env`] (which reads
    /// [`TrainerConfig::num_envs`]); a hand-built `venv` also works —
    /// its lane count wins. Lane stepping and (on the `Threaded`
    /// backend) every batched network pass parallelise on the
    /// persistent `mramrl_nn::pool` without changing a single bit of
    /// the trajectory — determinism stays seed-only.
    ///
    /// This *is* [`Trainer::run_parallel`] with one fleet (the engines
    /// are literally the same function), so its trajectories are pinned
    /// both downward (`K = 1` ≡ [`Trainer::run`]) and upward (the
    /// one-fleet case of the actor/learner schedule).
    pub fn run_vec(&self, agent: &mut QAgent, venv: &mut VecEnv) -> TrainLog {
        self.run_parallel_core(agent, core::slice::from_mut(venv), &mut ())
            .0
    }

    /// The actor/learner driver: `fleets.len()` rollout fleets feed a
    /// [`ShardedReplay`] (shard `f` is fleet `f`'s private push target)
    /// and one batched learner drains the merged view on the pinned
    /// schedule. Build the fleets with [`Trainer::build_fleets`].
    ///
    /// **Determinism contract**: the result (TrainLog curve bits and
    /// final weights) is identical to the *pinned serial interleaving*
    /// of the same fleets — one round-robin loop, single replay buffer,
    /// single RNG — documented in `docs/training.md` and executed by the
    /// reference driver in the `actor_learner` test suite, on every
    /// bitwise backend at any `NN_POOL_THREADS`. One fleet reduces to
    /// [`Trainer::run_vec`] exactly.
    ///
    /// `iters` counts environment steps across **all** lanes of all
    /// fleets, so doubling the fleet count halves the rounds, not the
    /// work. With [`TrainerConfig::actor_precision`] =
    /// [`ActingPrecision::FixedQ8_8`] the actors run the integer
    /// datapath from a frozen snapshot (refreshed every
    /// [`TrainerConfig::snapshot_refresh`] updates at the phase
    /// boundary) and the learner's float update overlaps the actors'
    /// forward on the pool — a pure scheduling choice, same bits.
    ///
    /// # Panics
    ///
    /// Panics if `fleets` is empty or the fleets have unequal widths.
    pub fn run_parallel(&self, agent: &mut QAgent, fleets: &mut [VecEnv]) -> TrainLog {
        self.run_parallel_core(agent, fleets, &mut ()).0
    }

    /// [`Trainer::run_parallel`] with a [`LearnerHook`] observing every
    /// target sync — the learner → serving handoff
    /// (`mramrl_serve::LearnerPublisher` publishes the quantized
    /// snapshot to a `SnapshotStore` here, so served decisions track the
    /// newest generation mid-training).
    pub fn run_parallel_hooked(
        &self,
        agent: &mut QAgent,
        fleets: &mut [VecEnv],
        hook: &mut dyn LearnerHook,
    ) -> TrainLog {
        self.run_parallel_core(agent, fleets, hook).0
    }

    /// [`Trainer::run_parallel_hooked`] returning phase accounting —
    /// the bench harness's entry point for the learner-bound vs
    /// actor-bound regime cells.
    pub fn run_parallel_timed(
        &self,
        agent: &mut QAgent,
        fleets: &mut [VecEnv],
        hook: &mut dyn LearnerHook,
    ) -> (TrainLog, ParallelStats) {
        self.run_parallel_core(agent, fleets, hook)
    }

    /// The one engine behind `run_vec` / `run_parallel*`: the rotated
    /// act/learn schedule (learner drains the previous round, then the
    /// actors extend the replay), which makes the learner phase
    /// overlappable with the actors' forward in deployment precision
    /// while staying bit-identical to the classic act-then-learn round
    /// — the first learner phase of a run is empty, and one trailing
    /// learner phase after the loop completes the rotation.
    fn run_parallel_core(
        &self,
        agent: &mut QAgent,
        fleets: &mut [VecEnv],
        hook: &mut dyn LearnerHook,
    ) -> (TrainLog, ParallelStats) {
        let cfg = &self.cfg;
        let n = fleets.len();
        assert!(n > 0, "need at least one fleet");
        let k = fleets[0].len();
        assert!(
            fleets.iter().all(|f| f.len() == k),
            "fleets must have equal lane counts"
        );
        let lanes = n * k;

        agent.set_gemm_backend(cfg.backend);
        // The trainer owns the acting datapath: TD math runs float on
        // the live net; `cfg.actor_precision` selects the actors'
        // forward (a frozen trainer-held snapshot in Q8.8 mode — the
        // agent's own lazily-invalidated snapshot machinery would
        // re-quantize after every update).
        agent.set_acting_precision(ActingPrecision::Float32);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
        let sgd = Sgd::new(cfg.lr).with_grad_clip(cfg.grad_clip);
        let mut replay = ShardedReplay::for_fleets(cfg.replay_capacity, n, k);

        let mut cum_reward = MovingAverage::new(cfg.metrics_window);
        let mut return_ma = MovingAverage::new((cfg.metrics_window / 64).max(4));
        let mut sfd = SafeFlightTracker::new();
        let mut curve = Vec::new();

        let mut ep_reward = vec![0.0f32; lanes];
        let mut ep_actions = vec![0u64; lanes];
        let mut accumulated = 0usize;
        let mut updates = 0u64;
        let mut last_refresh = 0u64;
        let mut next_log = 0u64;
        let mut stats = ParallelStats::default();

        let mut ws = RolloutWs::init(fleets);
        let mut actor_snap: Option<Arc<QuantizedNet>> = match cfg.actor_precision {
            ActingPrecision::Float32 => None,
            ActingPrecision::FixedQ8_8 => Some(agent.quantized_snapshot_shared()),
        };
        let mut qws = QWorkspace::new();

        let mut batch: Option<TransitionBatch> = None;
        let mut idx: Vec<usize> = Vec::with_capacity(lanes);
        let mut actions: Vec<usize> = vec![0; lanes];
        let mut act: Vec<Action> = Vec::with_capacity(lanes);

        let mut iter = 0u64;
        while iter < cfg.iters {
            // 1. Pre-draw this learner phase's sample indices — they
            //    depend only on the merged length, so drawing them before
            //    the (possibly overlapped) phase keeps the single RNG
            //    stream identical to the serial interleaving's.
            replay.sample_indices(&mut rng, lanes, &mut idx);

            // 2. Learner phase (drains the previous rounds' replay) and
            //    the actors' fused [lanes]-wide Q forward. In Q8.8
            //    acting the two touch disjoint nets, so they overlap on
            //    the pool — except on the Threaded backend, where each
            //    pass already fans out across its batch axis and the
            //    2-way overlap would pin each side to one worker (the
            //    same heuristic as `QAgent::accumulate_td_batch`).
            //    Either schedule produces identical bits.
            let synced = match &actor_snap {
                Some(snap) => {
                    let sequential = cfg.backend == GemmBackend::Threaded
                        || mramrl_nn::pool::current_threads() <= 1;
                    let mut learner = || {
                        let t0 = Instant::now();
                        let s = learner_phase(
                            agent,
                            &sgd,
                            cfg,
                            &replay,
                            &idx,
                            &mut batch,
                            &mut accumulated,
                            &mut updates,
                        );
                        (s, t0.elapsed().as_nanos() as u64)
                    };
                    let snap = Arc::clone(snap);
                    let (ws, qws) = (&mut ws, &mut qws);
                    let mut actor = move || {
                        let t0 = Instant::now();
                        ws.q.copy_from(snap.q_values_batch(&ws.obs, qws));
                        t0.elapsed().as_nanos() as u64
                    };
                    let ((synced, learner_ns), actor_ns) = if sequential {
                        (learner(), actor())
                    } else {
                        mramrl_nn::pool::join2(learner, actor)
                    };
                    stats.learner_ns += learner_ns;
                    stats.actor_ns += actor_ns;
                    synced
                }
                None => {
                    let t0 = Instant::now();
                    let synced = learner_phase(
                        agent,
                        &sgd,
                        cfg,
                        &replay,
                        &idx,
                        &mut batch,
                        &mut accumulated,
                        &mut updates,
                    );
                    stats.learner_ns += t0.elapsed().as_nanos() as u64;
                    let t0 = Instant::now();
                    agent.q_values_batch_into(&ws.obs, &mut ws.q);
                    stats.actor_ns += t0.elapsed().as_nanos() as u64;
                    synced
                }
            };
            if synced {
                hook.on_target_sync(agent, updates);
            }
            hook.on_round(updates);
            // Snapshot refresh on its update cadence, at the phase
            // boundary (the refreshed snapshot is first used next
            // round) — part of the pinned schedule.
            if actor_snap.is_some() && updates.saturating_sub(last_refresh) >= cfg.snapshot_refresh
            {
                actor_snap = Some(agent.quantized_snapshot_shared());
                last_refresh = updates;
                stats.snapshot_refreshes += 1;
            }

            // 3. ε-greedy selection, fleet-major (one RNG draw per lane,
            //    plus one more per exploring lane — the serial order).
            let t0 = Instant::now();
            for (lane, a) in actions.iter_mut().enumerate().take(lanes) {
                *a = cfg.epsilon.choose_slice(ws.q.sample(lane), iter, &mut rng);
            }
            act.clear();
            act.extend(actions.iter().map(|&a| Action::from_index(a)));
            stats.actor_ns += t0.elapsed().as_nanos() as u64;

            // 4. Step every lane of every fleet in one pooled scatter.
            let t0 = Instant::now();
            let steps = step_fleets(fleets, &act);
            stats.env_ns += t0.elapsed().as_nanos() as u64;

            // 5. Metrics and shard pushes, fleet-major — fleet `f`
            //    touches only shard `f`.
            for (lane, step) in steps.iter().enumerate() {
                let (f, j) = (lane / k, lane % k);
                cum_reward.push(step.reward);
                ep_reward[lane] += step.reward;
                ep_actions[lane] += 1;
                let next = ws.frame(step.observation.data());
                let transition = Transition {
                    state: core::mem::replace(&mut ws.prev[lane], Arc::clone(&next)),
                    action: actions[lane],
                    reward: step.reward,
                    next_state: next,
                    terminal: step.crashed,
                };
                if let Some(evicted) = replay.push(f, transition) {
                    ws.recycle(evicted);
                }
                if step.crashed {
                    return_ma.push(ep_reward[lane] / ep_actions[lane].max(1) as f32);
                    sfd.record_episode(fleets[f].episode_distance(j));
                    ep_reward[lane] = 0.0;
                    ep_actions[lane] = 0;
                    let img = fleets[f].reset(j);
                    ws.prev[lane] = ws.frame(img.data());
                    ws.obs.sample_mut(lane).copy_from_slice(img.data());
                } else {
                    ws.obs
                        .sample_mut(lane)
                        .copy_from_slice(step.observation.data());
                }
            }
            stats.transitions += lanes as u64;

            // Same cadence as `run`: exactly one curve point per
            // `log_every` window — the first round at or past each
            // window start.
            if iter >= next_log {
                curve.push(CurvePoint {
                    iter,
                    cumulative_reward: cum_reward.value(),
                    avg_return: return_ma.value(),
                });
                next_log = (iter / cfg.log_every + 1) * cfg.log_every;
            }
            iter += lanes as u64;
        }
        // Trailing learner phase: the rotation owes one drain of the
        // final round's pushes (the classic schedule learns *after*
        // acting each round).
        replay.sample_indices(&mut rng, lanes, &mut idx);
        let t0 = Instant::now();
        let synced = learner_phase(
            agent,
            &sgd,
            cfg,
            &replay,
            &idx,
            &mut batch,
            &mut accumulated,
            &mut updates,
        );
        stats.learner_ns += t0.elapsed().as_nanos() as u64;
        if synced {
            hook.on_target_sync(agent, updates);
        }
        hook.on_round(updates);

        // Censored final episodes still inform SFD, lane by lane.
        for fleet in fleets.iter() {
            for j in 0..k {
                if fleet.episode_distance(j) > 0.0 {
                    sfd.record_episode(fleet.episode_distance(j));
                }
            }
        }

        stats.updates = updates;
        stats.frame_allocs = ws.frame_allocs;
        let episodes = sfd.episodes() as u64;
        let tail = (sfd.episodes() / 3).max(3);
        (
            TrainLog {
                episodes,
                sfd: sfd.tail_mean(tail),
                sfd_overall: sfd.mean(),
                final_reward: cum_reward.value(),
                curve,
            },
            stats,
        )
    }
}

/// Stacks per-lane observations `[C,H,W]` into one `[K, C, H, W]` batch.
fn stack_observations(obs: &[Tensor]) -> Tensor {
    let mut shape = Vec::with_capacity(obs[0].shape().len() + 1);
    shape.push(obs.len());
    shape.extend_from_slice(obs[0].shape());
    let mut data = Vec::with_capacity(obs.len() * obs[0].len());
    for o in obs {
        data.extend_from_slice(o.data());
    }
    Tensor::from_vec(&shape, data)
}

/// Depth image → CNN input tensor.
pub(crate) fn to_tensor(img: &Image) -> Tensor {
    Tensor::from_vec(&[1, img.height(), img.width()], img.data().to_vec())
}

/// Result of a frozen-policy evaluation flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean distance per episode (the paper's SFD), metres.
    pub sfd: f32,
    /// Episodes completed (crashes; the trailing partial episode counts
    /// once if it flew).
    pub episodes: u64,
    /// Mean per-step reward.
    pub mean_reward: f32,
}

/// Evaluates a frozen policy for `steps` environment steps with a small
/// residual exploration `eps` (breaks limit cycles without materially
/// perturbing the policy). No learning happens.
///
/// This is the measurement used for Fig. 11's safe-flight distance: it
/// decouples the SFD statistic from the exploration schedule that is
/// still active at the end of training.
///
/// # Panics
///
/// Panics if `steps` is zero or `eps` is outside `[0, 1]`.
pub fn evaluate(
    agent: &mut QAgent,
    env: &mut DroneEnv,
    steps: u64,
    eps: f32,
    seed: u64,
) -> EvalResult {
    assert!(steps > 0, "evaluation needs steps");
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEAA1_EAA1);
    let schedule = EpsilonSchedule::new(eps.max(1e-6), eps.max(1e-6), 1);
    let mut sfd = SafeFlightTracker::new();
    let mut reward_sum = 0.0f64;

    let mut obs = to_tensor(&env.reset());
    for step in 0..steps {
        let q = agent.q_values(&obs);
        let a = schedule.choose(&q, step, &mut rng);
        let s = env.step(Action::from_index(a));
        reward_sum += f64::from(s.reward);
        if s.crashed {
            sfd.record_episode(env.episode_distance());
            obs = to_tensor(&env.reset());
        } else {
            obs = to_tensor(&s.observation);
        }
    }
    if env.episode_distance() > 0.0 {
        sfd.record_episode(env.episode_distance());
    }
    EvalResult {
        sfd: sfd.mean(),
        episodes: sfd.episodes() as u64,
        mean_reward: (reward_sum / steps as f64) as f32,
    }
}

/// Vectorized [`evaluate`]: freezes the policy over a [`VecEnv`], one
/// batched Q forward per vec-step. `steps` counts total environment
/// steps across all lanes (rounded up to a whole vec-step).
///
/// **Deployment-mode fixed-point evaluation**: set the agent to
/// [`crate::ActingPrecision::FixedQ8_8`] first and every batched Q
/// forward here runs through the agent's Q8.8 snapshot instead of the
/// float network — `K` lanes acting through the quantised engine, as a
/// drone fleet on the 16-bit silicon datapath would. The policy is
/// frozen, so the snapshot is quantised exactly once for the whole
/// evaluation (see `docs/fixed_point.md`).
///
/// # Panics
///
/// Panics if `steps` is zero or `eps` is outside `[0, 1]`.
pub fn evaluate_vec(
    agent: &mut QAgent,
    venv: &mut VecEnv,
    steps: u64,
    eps: f32,
    seed: u64,
) -> EvalResult {
    assert!(steps > 0, "evaluation needs steps");
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    let k = venv.len();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEAA1_EAA1);
    let schedule = EpsilonSchedule::new(eps.max(1e-6), eps.max(1e-6), 1);
    let mut sfd = SafeFlightTracker::new();
    let mut reward_sum = 0.0f64;

    let mut obs: Vec<Tensor> = venv.reset_all().iter().map(to_tensor).collect();
    let mut stepped = 0u64;
    while stepped < steps {
        let q = agent.q_values_batch(&stack_observations(&obs));
        let act: Vec<Action> = (0..k)
            .map(|i| Action::from_index(schedule.choose_slice(q.sample(i), stepped, &mut rng)))
            .collect();
        for (i, s) in venv.step(&act).iter().enumerate() {
            reward_sum += f64::from(s.reward);
            if s.crashed {
                sfd.record_episode(venv.episode_distance(i));
                obs[i] = to_tensor(&venv.reset(i));
            } else {
                obs[i] = to_tensor(&s.observation);
            }
        }
        stepped += k as u64;
    }
    for i in 0..k {
        if venv.episode_distance(i) > 0.0 {
            sfd.record_episode(venv.episode_distance(i));
        }
    }
    EvalResult {
        sfd: sfd.mean(),
        episodes: sfd.episodes() as u64,
        mean_reward: (reward_sum / stepped as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mramrl_env::EnvKind;
    use mramrl_nn::NetworkSpec;

    fn tiny_env() -> DroneEnv {
        DroneEnv::new(EnvKind::IndoorApartment, 5)
            .with_camera(mramrl_env::DepthCamera::new(16, 16, 1.5, 20.0, 0.01))
    }

    #[test]
    fn run_produces_curves_and_episodes() {
        let mut env = tiny_env();
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let log = Trainer::new(TrainerConfig::online(300, 1)).run(&mut agent, &mut env);
        assert!(!log.curve.is_empty());
        assert!(log.curve.iter().all(|p| p.cumulative_reward.is_finite()));
        assert!(log.episodes > 0, "a fresh agent must crash sometimes");
        assert!(log.sfd >= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut env = tiny_env();
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), seed);
            Trainer::new(TrainerConfig::online(120, seed)).run(&mut agent, &mut env)
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.final_reward, b.final_reward);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn frozen_topology_trains_without_touching_conv() {
        use crate::Topology;
        let spec = NetworkSpec::micro(16, 1, 5);
        let mut agent = QAgent::new(&spec, 2);
        Topology::L2.apply(agent.net_mut());
        let conv_before: Vec<f32> = agent
            .net()
            .layers()
            .take(1)
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.value.data().to_vec()))
            .collect();
        let mut env = tiny_env();
        let _ = Trainer::new(TrainerConfig::online(100, 2)).run(&mut agent, &mut env);
        let conv_after: Vec<f32> = agent
            .net()
            .layers()
            .take(1)
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.value.data().to_vec()))
            .collect();
        assert_eq!(conv_before, conv_after);
    }

    #[test]
    fn run_vec_produces_curves_and_episodes() {
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(300, 1);
        cfg.num_envs = 3;
        let log = Trainer::new(cfg).run_vec(&mut agent, &mut venv);
        assert!(!log.curve.is_empty());
        assert!(log.curve.iter().all(|p| p.cumulative_reward.is_finite()));
        assert!(log.episodes > 0, "a fresh agent must crash sometimes");
        assert!(log.sfd >= 0.0);
    }

    #[test]
    fn run_vec_deterministic_given_seed() {
        let run = |seed| {
            let mut agent = QAgent::new(&NetworkSpec::micro(40, 1, 5), seed);
            let mut cfg = TrainerConfig::online(120, seed);
            cfg.num_envs = 2;
            let trainer = Trainer::new(cfg);
            let mut venv = trainer.build_vec_env(mramrl_env::EnvKind::IndoorApartment);
            assert_eq!(venv.len(), 2, "build_vec_env must honour num_envs");
            trainer.run_vec(&mut agent, &mut venv)
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.final_reward, b.final_reward);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn run_logs_once_per_log_window() {
        // iters = 11 with log_every = 3: the pre-fix unconditional
        // final-iteration clause logged window 3 twice (curve iters
        // [0, 3, 6, 9, 10]); the cadence contract is one point per
        // window, at its first iteration.
        let mut env = tiny_env();
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(11, 1);
        cfg.log_every = 3;
        let log = Trainer::new(cfg).run(&mut agent, &mut env);
        let iters: Vec<u64> = log.curve.iter().map(|p| p.iter).collect();
        assert_eq!(iters, vec![0, 3, 6, 9]);
    }

    #[test]
    fn run_vec_logs_once_per_log_window() {
        // k = 2 lanes with log_every = 3 (k does not divide log_every):
        // the pre-fix `iter % log_every < k` gate fired on both iter 6
        // (6 % 3 = 0) and iter 4 (4 % 3 = 1), and the final-step clause
        // added iter 8 — curve iters [0, 4, 6, 8], logging window 2
        // twice. Post-fix: the first vec-step at or past each window
        // start, once per window.
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(10, 1);
        cfg.num_envs = 2;
        cfg.log_every = 3;
        let log = Trainer::new(cfg).run_vec(&mut agent, &mut venv);
        let iters: Vec<u64> = log.curve.iter().map(|p| p.iter).collect();
        assert_eq!(iters, vec![0, 4, 6]);
        let windows: Vec<u64> = iters.iter().map(|i| i / 3).collect();
        for w in windows.windows(2) {
            assert!(w[0] < w[1], "duplicate or out-of-order log window");
        }
    }

    #[test]
    fn run_vec_k1_matches_run_cadence() {
        // A 1-lane vectorized run must reproduce the serial driver's
        // curve exactly — same iterations logged, same trajectory. With
        // run_vec now routed through the actor/learner engine, this test
        // pins the whole rotated schedule against the serial loop.
        let mut cfg = TrainerConfig::online(50, 9);
        cfg.log_every = 7;
        let serial = {
            let mut env = tiny_env();
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 9);
            Trainer::new(cfg).run(&mut agent, &mut env)
        };
        let vec1 = {
            let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env()]);
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 9);
            Trainer::new(cfg).run_vec(&mut agent, &mut venv)
        };
        let it = |l: &TrainLog| l.curve.iter().map(|p| p.iter).collect::<Vec<_>>();
        assert_eq!(it(&serial), it(&vec1));
        assert_eq!(serial.final_reward, vec1.final_reward);
    }

    #[test]
    fn evaluate_vec_reports_flight() {
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 4);
        let r = evaluate_vec(&mut agent, &mut venv, 100, 0.05, 4);
        assert!(r.sfd >= 0.0);
        assert!(r.mean_reward.is_finite());
        assert!(r.episodes > 0);
    }

    #[test]
    fn config_presets_scale_with_iters() {
        let short = TrainerConfig::online(100, 0);
        let long = TrainerConfig::online(10_000, 0);
        assert!(long.metrics_window > short.metrics_window);
        assert!(long.log_every > short.log_every);
        let tl = TrainerConfig::transfer_learning(100, 0);
        assert!(tl.epsilon.value(0) > short.epsilon.value(0));
    }

    #[test]
    fn run_parallel_reports_stats() {
        let mut cfg = TrainerConfig::online(96, 3);
        cfg.num_envs = 2;
        let trainer = Trainer::new(cfg);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 3);
        let mut fleets =
            mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env(), tiny_env(), tiny_env()])
                .split(2);
        let (log, stats) = trainer.run_parallel_timed(&mut agent, &mut fleets, &mut ());
        assert!(!log.curve.is_empty());
        assert_eq!(stats.transitions, 96);
        assert!(stats.updates > 0);
        assert!(stats.actor_ns > 0 && stats.env_ns > 0 && stats.learner_ns > 0);
        assert!(stats.frame_allocs > 0);
    }

    #[test]
    fn build_fleets_covers_flat_lane_seeds() {
        let mut cfg = TrainerConfig::online(10, 21);
        cfg.num_envs = 3;
        let fleets = Trainer::new(cfg).build_fleets(EnvKind::OutdoorForest, 2);
        assert_eq!(fleets.len(), 2);
        assert!(fleets.iter().all(|f| f.len() == 3));
        // Fleet 1, lane 0 must equal flat lane 3 (seed 21 + 3).
        let mut a = fleets[1].clone();
        let mut b = VecEnv::new(EnvKind::OutdoorForest, 21u64.wrapping_add(3), 1);
        assert_eq!(a.reset(0), b.reset(0));
    }
}
