//! The online training loop (TL phase and deployment phase share it).
//!
//! Two drivers share the configuration: [`Trainer::run`] steps one
//! [`DroneEnv`] serially (the paper's §V "one image at a time" platform
//! model), while [`Trainer::run_vec`] steps a [`VecEnv`] of `K` lanes and
//! feeds the networks whole observation batches — same Q-learning, every
//! hot pass batched ([`QAgent::q_values_batch`],
//! [`QAgent::accumulate_td_batch`]).
//!
//! With `TrainerConfig::backend = GemmBackend::Threaded` and more than
//! one executor on the persistent `mramrl_nn::pool`, the whole vec-step
//! runs multi-core: lane rendering fans out inside [`VecEnv::step`],
//! the TD batch's per-sample conv passes and GEMM row bands fan out
//! inside the layers, and the agent overlaps its independent
//! target/online forwards — all bit-identical to the serial schedule at
//! any `NN_POOL_THREADS` (see `docs/threading.md`).

use mramrl_env::{Action, DroneEnv, EnvKind, Image, VecEnv};
use mramrl_nn::{GemmBackend, Sgd, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::agent::QAgent;
use crate::metrics::{MovingAverage, SafeFlightTracker};
use crate::policy::EpsilonSchedule;
use crate::replay::{ReplayBuffer, Transition};

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Total environment steps (= training images, the paper's
    /// "iterations").
    pub iters: u64,
    /// Images per weight update (the paper's batch size N, Fig. 3(b)).
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Per-element gradient clip.
    pub grad_clip: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Replay capacity (transitions).
    pub replay_capacity: usize,
    /// Target-network sync period, in weight updates.
    pub target_sync: u64,
    /// Moving-average window for the cumulative-reward curve.
    pub metrics_window: usize,
    /// Emit one curve point per this many iterations.
    pub log_every: u64,
    /// RNG seed for exploration/replay sampling.
    pub seed: u64,
    /// GEMM backend for every network product in the run (both the online
    /// and target nets). Defaults to [`mramrl_nn::backend::default_backend`],
    /// i.e. the `NN_GEMM_BACKEND` env knob.
    pub backend: GemmBackend,
    /// Environment lanes for the vectorized driver:
    /// [`Trainer::build_vec_env`] sizes its fleet from this, and
    /// [`Trainer::run_vec`] builds its TD batches one transition per
    /// lane per step. The serial [`Trainer::run`] ignores it. Default 1.
    pub num_envs: usize,
}

impl TrainerConfig {
    /// Defaults for an online deployment run of `iters` steps: batch 4
    /// (the paper's headline fps operating point), transfer-style low
    /// exploration, metrics window scaled like the paper's (15000/60000
    /// of the run length).
    pub fn online(iters: u64, seed: u64) -> Self {
        Self {
            iters,
            batch_size: 4,
            lr: 2e-3,
            grad_clip: 1.0,
            gamma: 0.95,
            epsilon: EpsilonSchedule::transfer((iters / 2).max(1)),
            replay_capacity: 2048,
            target_sync: 64,
            metrics_window: ((iters as usize) / 4).max(16),
            log_every: (iters / 64).max(1),
            seed,
            backend: mramrl_nn::backend::default_backend(),
            num_envs: 1,
        }
    }

    /// Defaults for the from-scratch TL (meta-environment) phase.
    pub fn transfer_learning(iters: u64, seed: u64) -> Self {
        Self {
            epsilon: EpsilonSchedule::scratch((iters * 2 / 3).max(1)),
            lr: 3e-3,
            ..Self::online(iters, seed)
        }
    }
}

/// One sampled point of the Fig. 10 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Iteration index.
    pub iter: u64,
    /// Cumulative reward (moving average of rewards).
    pub cumulative_reward: f32,
    /// Return (moving average of per-episode mean rewards).
    pub avg_return: f32,
}

/// The result of one training run.
#[derive(Debug, Clone)]
pub struct TrainLog {
    /// Sampled learning curves.
    pub curve: Vec<CurvePoint>,
    /// Completed episodes (crashes).
    pub episodes: u64,
    /// Post-convergence safe flight distance (metres): mean over the last
    /// third of episodes.
    pub sfd: f32,
    /// Mean SFD over all episodes.
    pub sfd_overall: f32,
    /// Final cumulative reward.
    pub final_reward: f32,
}

/// Runs the Q-learning loop of §II on a [`DroneEnv`].
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `iters` or `batch_size` is zero.
    pub fn new(cfg: TrainerConfig) -> Self {
        assert!(cfg.iters > 0 && cfg.batch_size > 0, "empty training run");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Builds the [`VecEnv`] this configuration asks for:
    /// [`TrainerConfig::num_envs`] lanes of `kind`, lane `i` seeded
    /// `cfg.seed.wrapping_add(i)` — the canonical way to size the fleet
    /// for [`Trainer::run_vec`].
    ///
    /// # Panics
    ///
    /// Panics if `num_envs` is zero.
    pub fn build_vec_env(&self, kind: EnvKind) -> VecEnv {
        VecEnv::new(kind, self.cfg.seed, self.cfg.num_envs)
    }

    /// Runs the loop: act ε-greedily, record the transition, accumulate
    /// one replayed TD gradient per image, update every `batch_size`
    /// images (§III-D's batched update), log Fig. 10 metrics.
    pub fn run(&self, agent: &mut QAgent, env: &mut DroneEnv) -> TrainLog {
        let cfg = &self.cfg;
        agent.set_gemm_backend(cfg.backend);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
        let sgd = Sgd::new(cfg.lr).with_grad_clip(cfg.grad_clip);
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);

        let mut cum_reward = MovingAverage::new(cfg.metrics_window);
        let mut return_ma = MovingAverage::new((cfg.metrics_window / 64).max(4));
        let mut sfd = SafeFlightTracker::new();
        let mut curve = Vec::new();

        let mut episode_reward_sum = 0.0f32;
        let mut episode_actions = 0u64;
        let mut accumulated = 0usize;
        let mut next_log = 0u64;

        let mut obs = to_tensor(&env.reset());
        for iter in 0..cfg.iters {
            let q = agent.q_values(&obs);
            let a = cfg.epsilon.choose(&q, iter, &mut rng);
            let step = env.step(Action::from_index(a));
            let next = to_tensor(&step.observation);

            cum_reward.push(step.reward);
            episode_reward_sum += step.reward;
            episode_actions += 1;

            replay.push(Transition {
                state: obs,
                action: a,
                reward: step.reward,
                next_state: next.clone(),
                terminal: step.crashed,
            });

            // One TD gradient per image, drawn from replay (decorrelated).
            if let Some(t) = replay.sample(&mut rng) {
                let t = t.clone();
                agent.accumulate_td(&t);
                accumulated += 1;
            }
            if accumulated >= cfg.batch_size {
                agent.apply_update(&sgd, accumulated, cfg.target_sync);
                accumulated = 0;
            }

            if step.crashed {
                return_ma.push(episode_reward_sum / episode_actions.max(1) as f32);
                sfd.record_episode(env.episode_distance());
                episode_reward_sum = 0.0;
                episode_actions = 0;
                obs = to_tensor(&env.reset());
            } else {
                obs = next;
            }

            // Exactly one curve point per `log_every` window: log the
            // first iteration at or past each window start (for serial
            // stepping, the multiples of `log_every`). End-of-run state
            // lives in `TrainLog::final_reward`, so no extra final
            // point is emitted.
            if iter >= next_log {
                curve.push(CurvePoint {
                    iter,
                    cumulative_reward: cum_reward.value(),
                    avg_return: return_ma.value(),
                });
                next_log = (iter / cfg.log_every + 1) * cfg.log_every;
            }
        }
        // Censored final episode still informs SFD.
        if env.episode_distance() > 0.0 {
            sfd.record_episode(env.episode_distance());
        }

        let episodes = sfd.episodes() as u64;
        let tail = (sfd.episodes() / 3).max(3);
        TrainLog {
            episodes,
            sfd: sfd.tail_mean(tail),
            sfd_overall: sfd.mean(),
            final_reward: cum_reward.value(),
            curve,
        }
    }

    /// The vectorized loop: `K = venv.len()` lanes act together. Each
    /// vec-step runs **one** batched Q forward for action selection
    /// (`[K, ...]` observations), records `K` transitions, accumulates a
    /// `K`-sized replayed TD batch via [`QAgent::accumulate_td_batch`]
    /// (one TD gradient per image, as in the serial loop) and applies the
    /// §III-D batched update once `batch_size` gradients have
    /// accumulated. `iters` counts total environment steps across lanes,
    /// so wall-clock work matches [`Trainer::run`] at equal `iters`.
    ///
    /// Size the `VecEnv` with [`Trainer::build_vec_env`] (which reads
    /// [`TrainerConfig::num_envs`]); a hand-built `venv` also works —
    /// its lane count wins. Lane stepping and (on the `Threaded`
    /// backend) every batched network pass parallelise on the
    /// persistent `mramrl_nn::pool` without changing a single bit of
    /// the trajectory — determinism stays seed-only.
    pub fn run_vec(&self, agent: &mut QAgent, venv: &mut VecEnv) -> TrainLog {
        let cfg = &self.cfg;
        agent.set_gemm_backend(cfg.backend);
        let k = venv.len();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
        let sgd = Sgd::new(cfg.lr).with_grad_clip(cfg.grad_clip);
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);

        let mut cum_reward = MovingAverage::new(cfg.metrics_window);
        let mut return_ma = MovingAverage::new((cfg.metrics_window / 64).max(4));
        let mut sfd = SafeFlightTracker::new();
        let mut curve = Vec::new();

        let mut ep_reward = vec![0.0f32; k];
        let mut ep_actions = vec![0u64; k];
        let mut accumulated = 0usize;
        let mut next_log = 0u64;

        let mut obs: Vec<Tensor> = venv.reset_all().iter().map(to_tensor).collect();
        let mut iter = 0u64;
        while iter < cfg.iters {
            let q = agent.q_values_batch(&stack_observations(&obs));
            let actions: Vec<usize> = (0..k)
                .map(|i| cfg.epsilon.choose_slice(q.sample(i), iter, &mut rng))
                .collect();
            let act: Vec<Action> = actions.iter().map(|&a| Action::from_index(a)).collect();
            let steps = venv.step(&act);

            for (i, step) in steps.iter().enumerate() {
                let next = to_tensor(&step.observation);
                cum_reward.push(step.reward);
                ep_reward[i] += step.reward;
                ep_actions[i] += 1;
                replay.push(Transition {
                    state: core::mem::replace(&mut obs[i], next.clone()),
                    action: actions[i],
                    reward: step.reward,
                    next_state: next,
                    terminal: step.crashed,
                });
                if step.crashed {
                    return_ma.push(ep_reward[i] / ep_actions[i].max(1) as f32);
                    sfd.record_episode(venv.episode_distance(i));
                    ep_reward[i] = 0.0;
                    ep_actions[i] = 0;
                    obs[i] = to_tensor(&venv.reset(i));
                }
            }

            // One TD gradient per image: a K-sized replayed batch.
            if let Some(batch) = replay.sample_as_batch(&mut rng, k) {
                agent.accumulate_td_batch(&batch);
                accumulated += k;
            }
            if accumulated >= cfg.batch_size {
                agent.apply_update(&sgd, accumulated, cfg.target_sync);
                accumulated = 0;
            }

            // Same cadence as `run`: exactly one curve point per
            // `log_every` window — the first vec-step at or past each
            // window start. (The old `iter % log_every < k` gate
            // double-logged a window whenever `k ∤ log_every` put two
            // vec-steps inside its first `k` iterations, and the
            // unconditional final-step clause duplicated the last
            // window's point; end-of-run state lives in
            // `TrainLog::final_reward`.)
            if iter >= next_log {
                curve.push(CurvePoint {
                    iter,
                    cumulative_reward: cum_reward.value(),
                    avg_return: return_ma.value(),
                });
                next_log = (iter / cfg.log_every + 1) * cfg.log_every;
            }
            iter += k as u64;
        }
        // Censored final episodes still inform SFD, lane by lane.
        for i in 0..k {
            if venv.episode_distance(i) > 0.0 {
                sfd.record_episode(venv.episode_distance(i));
            }
        }

        let episodes = sfd.episodes() as u64;
        let tail = (sfd.episodes() / 3).max(3);
        TrainLog {
            episodes,
            sfd: sfd.tail_mean(tail),
            sfd_overall: sfd.mean(),
            final_reward: cum_reward.value(),
            curve,
        }
    }
}

/// Stacks per-lane observations `[C,H,W]` into one `[K, C, H, W]` batch.
fn stack_observations(obs: &[Tensor]) -> Tensor {
    let mut shape = Vec::with_capacity(obs[0].shape().len() + 1);
    shape.push(obs.len());
    shape.extend_from_slice(obs[0].shape());
    let mut data = Vec::with_capacity(obs.len() * obs[0].len());
    for o in obs {
        data.extend_from_slice(o.data());
    }
    Tensor::from_vec(&shape, data)
}

/// Depth image → CNN input tensor.
pub(crate) fn to_tensor(img: &Image) -> Tensor {
    Tensor::from_vec(&[1, img.height(), img.width()], img.data().to_vec())
}

/// Result of a frozen-policy evaluation flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean distance per episode (the paper's SFD), metres.
    pub sfd: f32,
    /// Episodes completed (crashes; the trailing partial episode counts
    /// once if it flew).
    pub episodes: u64,
    /// Mean per-step reward.
    pub mean_reward: f32,
}

/// Evaluates a frozen policy for `steps` environment steps with a small
/// residual exploration `eps` (breaks limit cycles without materially
/// perturbing the policy). No learning happens.
///
/// This is the measurement used for Fig. 11's safe-flight distance: it
/// decouples the SFD statistic from the exploration schedule that is
/// still active at the end of training.
///
/// # Panics
///
/// Panics if `steps` is zero or `eps` is outside `[0, 1]`.
pub fn evaluate(
    agent: &mut QAgent,
    env: &mut DroneEnv,
    steps: u64,
    eps: f32,
    seed: u64,
) -> EvalResult {
    assert!(steps > 0, "evaluation needs steps");
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEAA1_EAA1);
    let schedule = EpsilonSchedule::new(eps.max(1e-6), eps.max(1e-6), 1);
    let mut sfd = SafeFlightTracker::new();
    let mut reward_sum = 0.0f64;

    let mut obs = to_tensor(&env.reset());
    for step in 0..steps {
        let q = agent.q_values(&obs);
        let a = schedule.choose(&q, step, &mut rng);
        let s = env.step(Action::from_index(a));
        reward_sum += f64::from(s.reward);
        if s.crashed {
            sfd.record_episode(env.episode_distance());
            obs = to_tensor(&env.reset());
        } else {
            obs = to_tensor(&s.observation);
        }
    }
    if env.episode_distance() > 0.0 {
        sfd.record_episode(env.episode_distance());
    }
    EvalResult {
        sfd: sfd.mean(),
        episodes: sfd.episodes() as u64,
        mean_reward: (reward_sum / steps as f64) as f32,
    }
}

/// Vectorized [`evaluate`]: freezes the policy over a [`VecEnv`], one
/// batched Q forward per vec-step. `steps` counts total environment
/// steps across all lanes (rounded up to a whole vec-step).
///
/// **Deployment-mode fixed-point evaluation**: set the agent to
/// [`crate::ActingPrecision::FixedQ8_8`] first and every batched Q
/// forward here runs through the agent's Q8.8 snapshot instead of the
/// float network — `K` lanes acting through the quantised engine, as a
/// drone fleet on the 16-bit silicon datapath would. The policy is
/// frozen, so the snapshot is quantised exactly once for the whole
/// evaluation (see `docs/fixed_point.md`).
///
/// # Panics
///
/// Panics if `steps` is zero or `eps` is outside `[0, 1]`.
pub fn evaluate_vec(
    agent: &mut QAgent,
    venv: &mut VecEnv,
    steps: u64,
    eps: f32,
    seed: u64,
) -> EvalResult {
    assert!(steps > 0, "evaluation needs steps");
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    let k = venv.len();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEAA1_EAA1);
    let schedule = EpsilonSchedule::new(eps.max(1e-6), eps.max(1e-6), 1);
    let mut sfd = SafeFlightTracker::new();
    let mut reward_sum = 0.0f64;

    let mut obs: Vec<Tensor> = venv.reset_all().iter().map(to_tensor).collect();
    let mut stepped = 0u64;
    while stepped < steps {
        let q = agent.q_values_batch(&stack_observations(&obs));
        let act: Vec<Action> = (0..k)
            .map(|i| Action::from_index(schedule.choose_slice(q.sample(i), stepped, &mut rng)))
            .collect();
        for (i, s) in venv.step(&act).iter().enumerate() {
            reward_sum += f64::from(s.reward);
            if s.crashed {
                sfd.record_episode(venv.episode_distance(i));
                obs[i] = to_tensor(&venv.reset(i));
            } else {
                obs[i] = to_tensor(&s.observation);
            }
        }
        stepped += k as u64;
    }
    for i in 0..k {
        if venv.episode_distance(i) > 0.0 {
            sfd.record_episode(venv.episode_distance(i));
        }
    }
    EvalResult {
        sfd: sfd.mean(),
        episodes: sfd.episodes() as u64,
        mean_reward: (reward_sum / stepped as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mramrl_env::EnvKind;
    use mramrl_nn::NetworkSpec;

    fn tiny_env() -> DroneEnv {
        DroneEnv::new(EnvKind::IndoorApartment, 5)
            .with_camera(mramrl_env::DepthCamera::new(16, 16, 1.5, 20.0, 0.01))
    }

    #[test]
    fn run_produces_curves_and_episodes() {
        let mut env = tiny_env();
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let log = Trainer::new(TrainerConfig::online(300, 1)).run(&mut agent, &mut env);
        assert!(!log.curve.is_empty());
        assert!(log.curve.iter().all(|p| p.cumulative_reward.is_finite()));
        assert!(log.episodes > 0, "a fresh agent must crash sometimes");
        assert!(log.sfd >= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut env = tiny_env();
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), seed);
            Trainer::new(TrainerConfig::online(120, seed)).run(&mut agent, &mut env)
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.final_reward, b.final_reward);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn frozen_topology_trains_without_touching_conv() {
        use crate::Topology;
        let spec = NetworkSpec::micro(16, 1, 5);
        let mut agent = QAgent::new(&spec, 2);
        Topology::L2.apply(agent.net_mut());
        let conv_before: Vec<f32> = agent
            .net()
            .layers()
            .take(1)
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.value.data().to_vec()))
            .collect();
        let mut env = tiny_env();
        let _ = Trainer::new(TrainerConfig::online(100, 2)).run(&mut agent, &mut env);
        let conv_after: Vec<f32> = agent
            .net()
            .layers()
            .take(1)
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.value.data().to_vec()))
            .collect();
        assert_eq!(conv_before, conv_after);
    }

    #[test]
    fn run_vec_produces_curves_and_episodes() {
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(300, 1);
        cfg.num_envs = 3;
        let log = Trainer::new(cfg).run_vec(&mut agent, &mut venv);
        assert!(!log.curve.is_empty());
        assert!(log.curve.iter().all(|p| p.cumulative_reward.is_finite()));
        assert!(log.episodes > 0, "a fresh agent must crash sometimes");
        assert!(log.sfd >= 0.0);
    }

    #[test]
    fn run_vec_deterministic_given_seed() {
        let run = |seed| {
            let mut agent = QAgent::new(&NetworkSpec::micro(40, 1, 5), seed);
            let mut cfg = TrainerConfig::online(120, seed);
            cfg.num_envs = 2;
            let trainer = Trainer::new(cfg);
            let mut venv = trainer.build_vec_env(mramrl_env::EnvKind::IndoorApartment);
            assert_eq!(venv.len(), 2, "build_vec_env must honour num_envs");
            trainer.run_vec(&mut agent, &mut venv)
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.final_reward, b.final_reward);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn run_logs_once_per_log_window() {
        // iters = 11 with log_every = 3: the pre-fix unconditional
        // final-iteration clause logged window 3 twice (curve iters
        // [0, 3, 6, 9, 10]); the cadence contract is one point per
        // window, at its first iteration.
        let mut env = tiny_env();
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(11, 1);
        cfg.log_every = 3;
        let log = Trainer::new(cfg).run(&mut agent, &mut env);
        let iters: Vec<u64> = log.curve.iter().map(|p| p.iter).collect();
        assert_eq!(iters, vec![0, 3, 6, 9]);
    }

    #[test]
    fn run_vec_logs_once_per_log_window() {
        // k = 2 lanes with log_every = 3 (k does not divide log_every):
        // the pre-fix `iter % log_every < k` gate fired on both iter 6
        // (6 % 3 = 0) and iter 4 (4 % 3 = 1), and the final-step clause
        // added iter 8 — curve iters [0, 4, 6, 8], logging window 2
        // twice. Post-fix: the first vec-step at or past each window
        // start, once per window.
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 1);
        let mut cfg = TrainerConfig::online(10, 1);
        cfg.num_envs = 2;
        cfg.log_every = 3;
        let log = Trainer::new(cfg).run_vec(&mut agent, &mut venv);
        let iters: Vec<u64> = log.curve.iter().map(|p| p.iter).collect();
        assert_eq!(iters, vec![0, 4, 6]);
        let windows: Vec<u64> = iters.iter().map(|i| i / 3).collect();
        for w in windows.windows(2) {
            assert!(w[0] < w[1], "duplicate or out-of-order log window");
        }
    }

    #[test]
    fn run_vec_k1_matches_run_cadence() {
        // A 1-lane vectorized run must reproduce the serial driver's
        // curve exactly — same iterations logged, same trajectory.
        let mut cfg = TrainerConfig::online(50, 9);
        cfg.log_every = 7;
        let serial = {
            let mut env = tiny_env();
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 9);
            Trainer::new(cfg).run(&mut agent, &mut env)
        };
        let vec1 = {
            let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env()]);
            let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 9);
            Trainer::new(cfg).run_vec(&mut agent, &mut venv)
        };
        let it = |l: &TrainLog| l.curve.iter().map(|p| p.iter).collect::<Vec<_>>();
        assert_eq!(it(&serial), it(&vec1));
        assert_eq!(serial.final_reward, vec1.final_reward);
    }

    #[test]
    fn evaluate_vec_reports_flight() {
        let mut venv = mramrl_env::VecEnv::from_envs(vec![tiny_env(), tiny_env()]);
        let mut agent = QAgent::new(&NetworkSpec::micro(16, 1, 5), 4);
        let r = evaluate_vec(&mut agent, &mut venv, 100, 0.05, 4);
        assert!(r.sfd >= 0.0);
        assert!(r.mean_reward.is_finite());
        assert!(r.episodes > 0);
    }

    #[test]
    fn config_presets_scale_with_iters() {
        let short = TrainerConfig::online(100, 0);
        let long = TrainerConfig::online(10_000, 0);
        assert!(long.metrics_window > short.metrics_window);
        assert!(long.log_every > short.log_every);
        let tl = TrainerConfig::transfer_learning(100, 0);
        assert!(tl.epsilon.value(0) > short.epsilon.value(0));
    }
}
