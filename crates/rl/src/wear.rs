//! Endurance metering for live training: [`EnduranceScheduler`] as a
//! [`LearnerHook`].
//!
//! The scheduler observes the learner's update counter at every round
//! boundary and advances its *modeled* NVM write stream — one write-back
//! burst per applied weight update — through its coalescing/steering
//! policy. It never touches the agent, so a hooked
//! [`Trainer::run_parallel_hooked`] run is bit-identical to the unhooked
//! one (pinned by `tests/endurance_hook.rs`), while the run's
//! [`WearReport`](mramrl_mem::WearReport) quantifies the wear the
//! paper's E2E write-back traffic would have cost — and how much of it
//! the online scheduler removes.
//!
//! [`Trainer::run_parallel_hooked`]: crate::Trainer::run_parallel_hooked

use mramrl_mem::EnduranceScheduler;

use crate::agent::QAgent;
use crate::trainer::LearnerHook;

impl LearnerHook for EnduranceScheduler {
    /// Target syncs carry no extra write traffic in the model — the
    /// target network lives in SRAM on every topology — so this is a
    /// no-op; metering happens in [`LearnerHook::on_round`].
    fn on_target_sync(&mut self, _agent: &mut QAgent, _updates: u64) {}

    /// Advances the modeled write stream to `updates` total weight
    /// updates: each newly observed update charges one write-back burst
    /// of `bytes_per_update` to the baseline stream and one coalesced,
    /// region-steered burst to the scheduled stream.
    fn on_round(&mut self, updates: u64) {
        self.advance_to(updates);
    }
}

#[cfg(test)]
mod tests {
    use mramrl_mem::tech::TechParams;
    use mramrl_mem::{EnduranceScheduler, SchedulerPolicy};

    use crate::trainer::LearnerHook;

    #[test]
    fn on_round_is_idempotent_per_update_count() {
        let mut s = EnduranceScheduler::new(
            TechParams::stt_mram(),
            128_000_000,
            1_000,
            SchedulerPolicy::date19(),
        );
        // Rounds without new updates (the common case while the replay
        // warms up) must not inflate the stream.
        s.on_round(0);
        s.on_round(0);
        s.on_round(3);
        s.on_round(3);
        assert_eq!(s.updates(), 3);
        assert_eq!(s.report().baseline_bytes, 3_000);
    }
}
