//! The actor/learner determinism contract (`Trainer::run_parallel`):
//!
//! * `run_parallel(N)` is **bit-identical** (TrainLog curve + final
//!   weights) to the pinned serial interleaving — an independent
//!   reference driver below: one round-robin loop over the fleets, a
//!   single replay buffer, a single RNG — for N ∈ {1, 2, 4}, in both
//!   float and Q8.8 acting;
//! * `run_parallel(1)` ≡ `run_vec` exactly;
//! * the trajectory is invariant across the bitwise GEMM backends and
//!   pool sizes {1, 2, 7} — parallelism changes throughput, never bits;
//! * deployment-precision actors really act on the *stale* snapshot
//!   (refresh cadence is observable), and the rollout hot path reaches
//!   zero steady-state frame allocation (the `Workspace::footprint`
//!   discipline, extended to replay frames).

use std::sync::Arc;

use mramrl_env::{DepthCamera, DroneEnv, VecEnv};
use mramrl_nn::pool::ThreadPool;
use mramrl_nn::{GemmBackend, NetworkSpec, QWorkspace, QuantizedNet, Sgd, Tensor};
use mramrl_rl::{
    ActingPrecision, MovingAverage, QAgent, ReplayBuffer, SafeFlightTracker, TrainLog, Trainer,
    TrainerConfig, Transition, TransitionBatch,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const HW: usize = 16;

fn spec() -> NetworkSpec {
    NetworkSpec::micro(HW, 1, 5)
}

fn tiny_env(seed: u64) -> DroneEnv {
    DroneEnv::new(mramrl_env::EnvKind::IndoorApartment, seed)
        .with_camera(DepthCamera::new(HW, HW, 1.5, 20.0, 0.01))
}

/// `n` fleets of `k` tiny lanes, flat-seeded like `Trainer::build_fleets`.
fn fleets(seed: u64, n: usize, k: usize) -> Vec<VecEnv> {
    let envs: Vec<DroneEnv> = (0..n * k)
        .map(|i| tiny_env(seed.wrapping_add(i as u64)))
        .collect();
    VecEnv::from_envs(envs).split(n)
}

fn cfg(iters: u64, seed: u64, k: usize) -> TrainerConfig {
    let mut c = TrainerConfig::online(iters, seed);
    c.num_envs = k;
    c.batch_size = 4;
    c.target_sync = 3;
    c.replay_capacity = 48;
    c.log_every = 8;
    c.snapshot_refresh = 2;
    c
}

/// One curve point as raw bits: (iter, cumulative_reward, avg_return).
type CurveBits = Vec<(u64, u32, u32)>;

fn curve_bits(l: &TrainLog) -> CurveBits {
    l.curve
        .iter()
        .map(|p| {
            (
                p.iter,
                p.cumulative_reward.to_bits(),
                p.avg_return.to_bits(),
            )
        })
        .collect()
}

/// The **documented serial interleaving** `run_parallel` must equal:
/// one loop, one replay buffer, one RNG, classic act-then-learn rounds.
/// Per round: (1) per-fleet batched Q forwards (k-wide — *not* the
/// engine's fused N·k forward, so this leans on the engine's batched ≡
/// serial row contract rather than sharing its code path); (2) ε-greedy
/// choices fleet-major; (3) step each fleet separately; (4) push every
/// transition fleet-major into the single buffer (freshly allocated
/// frames — no sharing, so the engine's Arc recycling is proven
/// behaviour-neutral); (5) log on the `run_vec` cadence; (6) sample one
/// index per lane, accumulate the TD batch, apply the update when
/// `batch_size` gradients accumulated. Q8.8 acting holds a frozen
/// snapshot with the documented **one-round publication latency**: at
/// the top of each round the fleet installs the snapshot requested last
/// round (if any), then — when the update cadence has fired — requests
/// a fresh one from the current weights; the request arrives at the
/// next round boundary, exactly as the overlapped engine (and a real
/// learner → fleet link) delivers it.
fn pinned_serial_reference(
    cfg: &TrainerConfig,
    agent: &mut QAgent,
    fleets: &mut [VecEnv],
    q88: bool,
) -> (Vec<(u64, u32, u32)>, Vec<u8>) {
    let n = fleets.len();
    let k = fleets[0].len();
    let lanes = n * k;

    agent.set_gemm_backend(cfg.backend);
    agent.set_acting_precision(ActingPrecision::Float32);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
    let sgd = Sgd::new(cfg.lr).with_grad_clip(cfg.grad_clip);
    // A single buffer with the sharded drivers' whole-round capacity.
    let cap = if n == 1 {
        cfg.replay_capacity
    } else {
        (cfg.replay_capacity / n / k).max(1) * k * n
    };
    let mut replay = ReplayBuffer::new(cap);

    let mut cum_reward = MovingAverage::new(cfg.metrics_window);
    let mut return_ma = MovingAverage::new((cfg.metrics_window / 64).max(4));
    let mut sfd = SafeFlightTracker::new();
    let mut curve: Vec<(u64, u32, u32)> = Vec::new();

    let mut ep_reward = vec![0.0f32; lanes];
    let mut ep_actions = vec![0u64; lanes];
    let mut accumulated = 0usize;
    let mut updates = 0u64;
    let mut last_refresh = 0u64;
    let mut next_log = 0u64;

    let mut obs: Vec<Tensor> = Vec::new();
    for fl in fleets.iter_mut() {
        for img in fl.reset_all() {
            obs.push(Tensor::from_vec(&[1, HW, HW], img.data().to_vec()));
        }
    }
    let mut snap: Option<Arc<QuantizedNet>> = q88.then(|| agent.quantized_snapshot_shared());
    let mut pending: Option<Arc<QuantizedNet>> = None;
    let mut qws = QWorkspace::new();

    let mut iter = 0u64;
    while iter < cfg.iters {
        if let Some(p) = pending.take() {
            snap = Some(p);
        }
        if snap.is_some() && updates.saturating_sub(last_refresh) >= cfg.snapshot_refresh {
            pending = Some(agent.quantized_snapshot_shared());
            last_refresh = updates;
        }
        // Per-fleet forwards, lane-major rows collected fleet-major.
        let mut q_rows: Vec<Vec<f32>> = Vec::with_capacity(lanes);
        for f in 0..n {
            let mut data = Vec::with_capacity(k * HW * HW);
            for j in 0..k {
                data.extend_from_slice(obs[f * k + j].data());
            }
            let fleet_obs = Tensor::from_vec(&[k, 1, HW, HW], data);
            match &snap {
                Some(s) => {
                    let q = s.q_values_batch(&fleet_obs, &mut qws);
                    for j in 0..k {
                        q_rows.push(q.sample(j).to_vec());
                    }
                }
                None => {
                    let q = agent.q_values_batch(&fleet_obs);
                    for j in 0..k {
                        q_rows.push(q.sample(j).to_vec());
                    }
                }
            }
        }
        let actions: Vec<usize> = (0..lanes)
            .map(|lane| cfg.epsilon.choose_slice(&q_rows[lane], iter, &mut rng))
            .collect();
        for f in 0..n {
            let act: Vec<mramrl_env::Action> = (0..k)
                .map(|j| mramrl_env::Action::from_index(actions[f * k + j]))
                .collect();
            for (j, step) in fleets[f].step(&act).iter().enumerate() {
                let lane = f * k + j;
                cum_reward.push(step.reward);
                ep_reward[lane] += step.reward;
                ep_actions[lane] += 1;
                let next = Arc::new(Tensor::from_vec(
                    &[1, HW, HW],
                    step.observation.data().to_vec(),
                ));
                replay.push(Transition {
                    state: Arc::new(obs[lane].clone()),
                    action: actions[lane],
                    reward: step.reward,
                    next_state: next,
                    terminal: step.crashed,
                });
                if step.crashed {
                    return_ma.push(ep_reward[lane] / ep_actions[lane].max(1) as f32);
                    sfd.record_episode(fleets[f].episode_distance(j));
                    ep_reward[lane] = 0.0;
                    ep_actions[lane] = 0;
                    let img = fleets[f].reset(j);
                    obs[lane] = Tensor::from_vec(&[1, HW, HW], img.data().to_vec());
                } else {
                    obs[lane] = Tensor::from_vec(&[1, HW, HW], step.observation.data().to_vec());
                }
            }
        }
        if iter >= next_log {
            curve.push((
                iter,
                cum_reward.value().to_bits(),
                return_ma.value().to_bits(),
            ));
            next_log = (iter / cfg.log_every + 1) * cfg.log_every;
        }
        iter += lanes as u64;

        // Learn: one sampled index per lane, with replacement.
        if !replay.is_empty() {
            let selected: Vec<&Transition> = (0..lanes)
                .map(|_| {
                    replay
                        .get(rng.gen_range(0..replay.len()))
                        .expect("in range")
                })
                .collect();
            let batch = TransitionBatch::from_transitions(&selected);
            agent.accumulate_td_batch(&batch);
            accumulated += lanes;
            if accumulated >= cfg.batch_size {
                agent.apply_update(&sgd, accumulated, cfg.target_sync);
                accumulated = 0;
                updates += 1;
            }
        }
    }
    (curve, agent.net().save_weights())
}

fn assert_matches_reference(n: usize, q88: bool, backend: GemmBackend) {
    let k = 2;
    let mut c = cfg(96, 17, k);
    c.backend = backend;
    if q88 {
        c.actor_precision = ActingPrecision::FixedQ8_8;
    }
    let trainer = Trainer::new(c);

    let mut engine_agent = QAgent::new(&spec(), 17);
    let mut fl = fleets(17, n, k);
    let log = trainer.run_parallel(&mut engine_agent, &mut fl);

    let mut ref_agent = QAgent::new(&spec(), 17);
    let mut fl = fleets(17, n, k);
    let (ref_curve, ref_weights) = pinned_serial_reference(&c, &mut ref_agent, &mut fl, q88);

    assert_eq!(
        curve_bits(&log),
        ref_curve,
        "curve diverged from the serial interleaving at n={n}, q88={q88}, {backend:?}"
    );
    assert_eq!(
        engine_agent.net().save_weights(),
        ref_weights,
        "final weights diverged from the serial interleaving at n={n}, q88={q88}, {backend:?}"
    );
}

/// `run_parallel(N)` ≡ the pinned serial interleaving, bit for bit, for
/// N ∈ {1, 2, 4} in both acting precisions.
#[test]
fn run_parallel_matches_pinned_serial_interleaving() {
    for &n in &[1usize, 2, 4] {
        for q88 in [false, true] {
            assert_matches_reference(n, q88, GemmBackend::Naive);
        }
    }
}

/// The same equivalence holds on the other bitwise backends (each
/// backend defines its own float-accumulation order, so trajectories
/// are compared engine-vs-reference *within* a backend).
#[test]
fn reference_equivalence_holds_per_backend() {
    for backend in [GemmBackend::Blocked, GemmBackend::Threaded] {
        for q88 in [false, true] {
            assert_matches_reference(2, q88, backend);
        }
    }
}

/// One fleet is literally `run_vec`: same curve, same weights.
#[test]
fn one_fleet_equals_run_vec() {
    let c = cfg(80, 9, 3);
    let trainer = Trainer::new(c);

    let mut a1 = QAgent::new(&spec(), 9);
    let mut fl = fleets(9, 1, 3);
    let par = trainer.run_parallel(&mut a1, &mut fl);

    let mut a2 = QAgent::new(&spec(), 9);
    let mut venv = fleets(9, 1, 3).pop().expect("one fleet");
    let vec = trainer.run_vec(&mut a2, &mut venv);

    assert_eq!(curve_bits(&par), curve_bits(&vec));
    assert_eq!(a1.net().save_weights(), a2.net().save_weights());
}

/// Within each bitwise backend, the trajectory is invariant across pool
/// sizes {1, 2, 7} — in both acting precisions (the Q8.8 run
/// additionally overlaps learner and actor on multi-thread pools, which
/// must not show). Backends are *not* compared to each other: each
/// defines its own float-accumulation order.
#[test]
fn pool_invariance_per_bitwise_backend() {
    for q88 in [false, true] {
        for backend in [
            GemmBackend::Naive,
            GemmBackend::Blocked,
            GemmBackend::Threaded,
        ] {
            let mut reference: Option<(CurveBits, Vec<u8>)> = None;
            for pool_threads in [1usize, 2, 7] {
                let pool = ThreadPool::new(pool_threads);
                let _installed = pool.install();
                let mut c = cfg(64, 23, 2);
                c.backend = backend;
                if q88 {
                    c.actor_precision = ActingPrecision::FixedQ8_8;
                }
                let mut agent = QAgent::new(&spec(), 23);
                let mut fl = fleets(23, 2, 2);
                let log = Trainer::new(c).run_parallel(&mut agent, &mut fl);
                let got = (curve_bits(&log), agent.net().save_weights());
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(
                        want, &got,
                        "trajectory changed under {backend:?} × {pool_threads} threads (q88={q88})"
                    ),
                }
            }
        }
    }
}

/// The snapshot refresh cadence is real: actors on a never-refreshed
/// snapshot act differently from actors refreshed every update, and the
/// refresh counter reports it.
#[test]
fn snapshot_refresh_cadence_is_observable() {
    let run = |refresh: u64| {
        let mut c = cfg(160, 31, 2);
        c.actor_precision = ActingPrecision::FixedQ8_8;
        c.snapshot_refresh = refresh;
        // A learning rate big enough that updates move Q8.8 codes, so
        // stale vs fresh snapshots must pick different actions.
        c.lr = 0.05;
        let mut agent = QAgent::new(&spec(), 31);
        let mut fl = fleets(31, 2, 2);
        let (log, stats) = Trainer::new(c).run_parallel_timed(&mut agent, &mut fl, &mut ());
        (curve_bits(&log), agent.net().save_weights(), stats)
    };
    let (fresh_curve, fresh_weights, fresh_stats) = run(1);
    let (stale_curve, stale_weights, stale_stats) = run(u64::MAX);
    assert!(
        fresh_stats.snapshot_refreshes > 0,
        "refresh cadence never fired"
    );
    assert_eq!(stale_stats.snapshot_refreshes, 0);
    assert!(
        fresh_curve != stale_curve || fresh_weights != stale_weights,
        "refreshing the acting snapshot must change the trajectory"
    );
}

/// Zero steady-state frame allocation: once the replay high-water mark
/// is reached, evicted frames recycle through the rollout pool and
/// doubling the run length allocates **nothing** more — and the total
/// is far below the two-tensors-per-transition cost the old layout paid.
#[test]
fn rollout_frame_allocations_reach_steady_state() {
    let run = |iters: u64| {
        let mut c = cfg(iters, 13, 2);
        c.replay_capacity = 16;
        let mut agent = QAgent::new(&spec(), 13);
        let mut fl = fleets(13, 2, 2);
        let (_, stats) = Trainer::new(c).run_parallel_timed(&mut agent, &mut fl, &mut ());
        stats
    };
    let short = run(200);
    let long = run(400);
    assert_eq!(
        short.frame_allocs, long.frame_allocs,
        "frame allocations must stop growing once replay is at capacity"
    );
    // Memory win vs the unshared layout: the old Transition stored two
    // owned tensors, so 400 transitions cost 800 frame buffers; shared
    // + recycled frames stay within capacity + lanes + episode churn.
    assert!(
        long.frame_allocs < long.transitions,
        "frame pool did not beat one-allocation-per-transition \
         (allocs={}, transitions={})",
        long.frame_allocs,
        long.transitions
    );
}
