//! The endurance-scheduler hook contract: hanging an
//! `EnduranceScheduler` on `Trainer::run_parallel_hooked` leaves the
//! training run **bit-identical** to the unhooked run (curve bits,
//! final reward, episodes, final weights) while metering a measurable
//! modeled-wear reduction for the write-back stream — the scheduler
//! observes, it never steers the arithmetic.

use mramrl_env::{DepthCamera, DroneEnv, VecEnv};
use mramrl_mem::tech::TechParams;
use mramrl_mem::{EnduranceScheduler, SchedulerPolicy};
use mramrl_nn::pool::ThreadPool;
use mramrl_nn::NetworkSpec;
use mramrl_rl::{ActingPrecision, QAgent, TrainLog, Trainer, TrainerConfig};

const HW: usize = 16;

fn fleets(seed: u64, n: usize, k: usize) -> Vec<VecEnv> {
    let envs: Vec<DroneEnv> = (0..n * k)
        .map(|i| {
            DroneEnv::new(
                mramrl_env::EnvKind::IndoorApartment,
                seed.wrapping_add(i as u64),
            )
            .with_camera(DepthCamera::new(HW, HW, 1.5, 20.0, 0.01))
        })
        .collect();
    VecEnv::from_envs(envs).split(n)
}

fn cfg(iters: u64, seed: u64, k: usize) -> TrainerConfig {
    let mut c = TrainerConfig::online(iters, seed);
    c.num_envs = k;
    c.batch_size = 4;
    c.target_sync = 3;
    c.replay_capacity = 48;
    c.log_every = 8;
    c.snapshot_refresh = 2;
    c
}

fn scheduler() -> EnduranceScheduler {
    // A stand-in E2E write-back stream: 1 MB per weight update into a
    // 128 MB stack under the paper policy.
    EnduranceScheduler::new(
        TechParams::stt_mram(),
        128_000_000,
        1_000_000,
        SchedulerPolicy::date19(),
    )
}

type LogBits = (Vec<(u64, u32, u32)>, u32, u64);

fn log_bits(l: &TrainLog) -> LogBits {
    (
        l.curve
            .iter()
            .map(|p| {
                (
                    p.iter,
                    p.cumulative_reward.to_bits(),
                    p.avg_return.to_bits(),
                )
            })
            .collect(),
        l.final_reward.to_bits(),
        l.episodes,
    )
}

#[test]
fn hooked_run_is_bit_identical_to_unhooked() {
    for q88 in [false, true] {
        let mut c = cfg(64, 23, 2);
        if q88 {
            c.actor_precision = ActingPrecision::FixedQ8_8;
        }

        let mut agent_a = QAgent::new(&NetworkSpec::micro(HW, 1, 5), 23);
        let mut fl_a = fleets(23, 2, 2);
        let plain = Trainer::new(c).run_parallel(&mut agent_a, &mut fl_a);

        let mut agent_b = QAgent::new(&NetworkSpec::micro(HW, 1, 5), 23);
        let mut fl_b = fleets(23, 2, 2);
        let mut sched = scheduler();
        let hooked = Trainer::new(c).run_parallel_hooked(&mut agent_b, &mut fl_b, &mut sched);

        assert_eq!(log_bits(&plain), log_bits(&hooked), "q88={q88}");
        assert_eq!(
            agent_a.net().save_weights(),
            agent_b.net().save_weights(),
            "final weights diverged (q88={q88})"
        );
        assert!(sched.updates() > 0, "hook never observed an update");
    }
}

#[test]
fn hooked_run_reports_wear_reduction() {
    let mut agent = QAgent::new(&NetworkSpec::micro(HW, 1, 5), 7);
    let mut fl = fleets(7, 2, 2);
    let mut sched = scheduler();
    let (_, stats) =
        Trainer::new(cfg(96, 7, 2)).run_parallel_timed(&mut agent, &mut fl, &mut sched);

    // The stream tracked exactly the learner's update counter…
    assert_eq!(sched.updates(), stats.updates);
    let r = sched.report();
    // …and the coalescing/steering policy measurably beats the naive
    // per-update write-back on every axis.
    assert!(r.baseline_bytes > 0);
    assert!(r.scheduled_bytes < r.baseline_bytes);
    assert!(r.scheduled_hot_cell_cycles < r.baseline_hot_cell_cycles);
    assert!(r.wear_reduction_factor > 1.0, "{}", r.wear_reduction_factor);
}

#[test]
fn hook_is_pool_size_invariant() {
    let mut reference: Option<(LogBits, Vec<u8>, u64)> = None;
    for pool_threads in [1usize, 2, 7] {
        let pool = ThreadPool::new(pool_threads);
        let _installed = pool.install();
        let mut agent = QAgent::new(&NetworkSpec::micro(HW, 1, 5), 11);
        let mut fl = fleets(11, 2, 2);
        let mut sched = scheduler();
        let log = Trainer::new(cfg(64, 11, 2)).run_parallel_hooked(&mut agent, &mut fl, &mut sched);
        let got = (log_bits(&log), agent.net().save_weights(), sched.updates());
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(r, &got, "pool={pool_threads}"),
        }
    }
}
