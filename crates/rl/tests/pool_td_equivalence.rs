//! Pooled TD-accumulation equivalence: `QAgent::accumulate_td_batch` —
//! with its concurrent target/online forwards and the pooled per-sample
//! conv passes underneath — must stay **bit-identical** to serial
//! `accumulate_td` calls on every GEMM backend and at every pool size
//! (`NN_POOL_THREADS` ∈ {1, 2, 7}, swept in-process via
//! `ThreadPool::install`).

use mramrl_nn::backend::GemmBackend;
use mramrl_nn::pool::ThreadPool;
use mramrl_nn::{NetworkSpec, Tensor};
use mramrl_rl::{QAgent, Transition, TransitionBatch};
use proptest::prelude::*;

fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut h = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            (h % 2000) as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn transitions(n: usize, hw: usize, seed: u64) -> Vec<Transition> {
    (0..n)
        .map(|i| Transition {
            state: std::sync::Arc::new(Tensor::from_vec(
                &[1, hw, hw],
                fill(hw * hw, seed ^ (2 * i) as u64),
            )),
            action: i % 5,
            reward: 0.1 * (i % 7) as f32 - 0.2,
            next_state: std::sync::Arc::new(Tensor::from_vec(
                &[1, hw, hw],
                fill(hw * hw, seed ^ (2 * i + 1) as u64),
            )),
            terminal: i % 3 == 0,
        })
        .collect()
}

fn all_grads(agent: &QAgent) -> Vec<f32> {
    agent
        .net()
        .layers()
        .flat_map(|l| l.params().into_iter().flat_map(|p| p.grad.data().to_vec()))
        .collect()
}

proptest! {
    /// Batched TD accumulation (gradients and TD errors) is bit-identical
    /// to the serial transition loop for every backend × pool size ×
    /// Double-DQN setting.
    #[test]
    fn pooled_td_accumulation_matches_serial_bitwise(
        n in 1usize..6,
        seed in 0u64..1 << 40,
    ) {
        let double_q = seed % 2 == 0;
        let hw = 8usize;
        let spec = NetworkSpec::micro(hw, 1, 5);
        let ts = transitions(n, hw, seed);
        let refs: Vec<&Transition> = ts.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs);

        for be in GemmBackend::ALL {
            let mut serial = QAgent::new(&spec, 17).with_double_q(double_q);
            serial.set_gemm_backend(be);
            let serial_td: Vec<f32> = ts.iter().map(|t| serial.accumulate_td(t)).collect();
            let serial_grads = all_grads(&serial);

            for pool_threads in [1usize, 2, 7] {
                let pool = ThreadPool::new(pool_threads);
                let _installed = pool.install();
                let mut batched = QAgent::new(&spec, 17).with_double_q(double_q);
                batched.set_gemm_backend(be);
                let batched_td = batched.accumulate_td_batch(&batch);
                prop_assert_eq!(
                    bits(&serial_td), bits(&batched_td),
                    "td {} pool={} n={} double_q={}", be, pool_threads, n, double_q
                );
                prop_assert_eq!(
                    bits(&serial_grads), bits(&all_grads(&batched)),
                    "grads {} pool={} n={} double_q={}", be, pool_threads, n, double_q
                );
            }
        }
    }
}

/// The greedy-action batch path (concurrent forwards under the pool)
/// agrees with serial argmax selection at every pool size.
#[test]
fn pooled_greedy_actions_match_serial() {
    let spec = NetworkSpec::micro(8, 1, 5);
    let obs: Vec<Tensor> = (0..4)
        .map(|i| Tensor::from_vec(&[1, 8, 8], fill(64, 100 + i)))
        .collect();
    let mut data = Vec::new();
    for o in &obs {
        data.extend_from_slice(o.data());
    }
    let batch = Tensor::from_vec(&[4, 1, 8, 8], data);
    for be in GemmBackend::ALL {
        let mut serial = QAgent::new(&spec, 21);
        serial.set_gemm_backend(be);
        let want: Vec<usize> = obs.iter().map(|o| serial.greedy_action(o)).collect();
        for pool_threads in [1usize, 2, 7] {
            let pool = ThreadPool::new(pool_threads);
            let _installed = pool.install();
            let mut agent = QAgent::new(&spec, 21);
            agent.set_gemm_backend(be);
            assert_eq!(
                agent.greedy_actions(&batch),
                want,
                "{be} pool={pool_threads}"
            );
        }
    }
}
