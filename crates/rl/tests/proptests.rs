//! Property tests for the RL stack.

use mramrl_nn::{NetworkSpec, Tensor, Topology};
use mramrl_rl::{
    EpsilonSchedule, MovingAverage, QAgent, ReplayBuffer, SafeFlightTracker, Transition,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Epsilon schedules are monotone non-increasing and bounded.
    #[test]
    fn epsilon_monotone(start in 0.2f32..1.0, end_frac in 0.0f32..1.0, steps in 1u64..10_000) {
        let end = start * end_frac;
        let sched = EpsilonSchedule::new(start, end, steps);
        let mut prev = f32::INFINITY;
        for s in (0..steps + 100).step_by((steps as usize / 17).max(1)) {
            let v = sched.value(s);
            prop_assert!(v <= prev + 1e-6);
            prop_assert!(v >= end - 1e-6 && v <= start + 1e-6);
            prev = v;
        }
    }

    /// Replay buffer never exceeds capacity and `latest` is always the
    /// last pushed item.
    #[test]
    fn replay_capacity_invariant(cap in 1usize..64, pushes in 1usize..200) {
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..pushes {
            buf.push(Transition {
                state: std::sync::Arc::new(Tensor::filled(&[1], i as f32)),
                action: i % 5,
                reward: i as f32,
                next_state: std::sync::Arc::new(Tensor::zeros(&[1])),
                terminal: false,
            });
            prop_assert!(buf.len() <= cap);
            prop_assert_eq!(buf.latest().unwrap().reward, i as f32);
        }
        prop_assert_eq!(buf.len(), pushes.min(cap));
    }

    /// Samples always come from the retained window (the newest
    /// `min(cap, pushes)` items).
    #[test]
    fn replay_samples_from_window(cap in 1usize..32, pushes in 1usize..100, seed in 0u64..100) {
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..pushes {
            buf.push(Transition {
                state: std::sync::Arc::new(Tensor::zeros(&[1])),
                action: 0,
                reward: i as f32,
                next_state: std::sync::Arc::new(Tensor::zeros(&[1])),
                terminal: false,
            });
        }
        let oldest_retained = pushes.saturating_sub(cap) as f32;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let t = buf.sample(&mut rng).unwrap();
            prop_assert!(t.reward >= oldest_retained);
        }
    }

    /// Moving average of a constant stream is that constant; of a bounded
    /// stream stays within the bounds.
    #[test]
    fn moving_average_bounds(vals in proptest::collection::vec(-5.0f32..5.0, 1..300), window in 1usize..64) {
        let mut ma = MovingAverage::new(window);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in &vals {
            ma.push(v);
            lo = lo.min(v);
            hi = hi.max(v);
            prop_assert!(ma.value() >= lo - 1e-4 && ma.value() <= hi + 1e-4);
        }
    }

    /// SFD tail mean over all episodes equals the plain mean.
    #[test]
    fn sfd_tail_covers_all(dists in proptest::collection::vec(0.0f32..500.0, 1..50)) {
        let mut s = SafeFlightTracker::new();
        for &d in &dists {
            s.record_episode(d);
        }
        prop_assert!((s.tail_mean(dists.len() + 10) - s.mean()).abs() < 1e-3);
    }

    /// Topology tails partition trainable counts strictly monotonically on
    /// any micro network size.
    #[test]
    fn topology_monotone_any_size(hw in 8usize..33) {
        let mut net = NetworkSpec::micro(hw, 1, 5).build(0);
        let mut last = 0;
        for t in Topology::ALL {
            t.apply(&mut net);
            let c = net.trainable_param_count();
            prop_assert!(c > last);
            last = c;
        }
    }

    /// TD target respects terminal semantics for arbitrary rewards: the
    /// accumulated TD error equals Q(s,a) − r on terminal transitions.
    #[test]
    fn terminal_td_error_exact(r in -1.0f32..1.0, seed in 0u64..50) {
        let spec = NetworkSpec::micro(8, 1, 5);
        let mut agent = QAgent::new(&spec, seed);
        let t = Transition {
            state: std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.5)),
            action: 1,
            reward: r,
            next_state: std::sync::Arc::new(Tensor::filled(&[1, 8, 8], 0.9)),
            terminal: true,
        };
        let q = agent.q_values(&t.state).data()[1];
        let td = agent.accumulate_td(&t);
        prop_assert!((td - (q - r)).abs() < 1e-5);
    }
}
