//! Deployment-mode (Q8.8) acting: correctness, freshness and measured
//! fidelity.
//!
//! Pins that [`QAgent`]'s quantised acting mode (1) selects exactly the
//! actions the [`QuantizedNet`] engine's Q-values imply, bit for bit,
//! on every integer backend and pool size, (2) never acts on a stale
//! snapshot after a weight update, and (3) — the paper's argmax-fidelity
//! claim, **measured, not assumed** — agrees with float greedy acting on
//! at least 80 % of frames once the policy has trained.

use mramrl_env::{DepthCamera, DroneEnv, EnvKind, VecEnv};
use mramrl_nn::qgemm::QGemmBackend;
use mramrl_nn::quant::QWorkspace;
use mramrl_nn::{argmax, NetworkSpec, Tensor};
use mramrl_rl::{evaluate_vec, ActingPrecision, QAgent, Trainer, TrainerConfig};

fn spec() -> NetworkSpec {
    NetworkSpec::micro(16, 1, 5)
}

fn obs_batch(n: usize, hw: usize, seed: u64) -> Tensor {
    let data: Vec<f32> = (0..n * hw * hw)
        .map(|i| {
            let mut h = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            (h % 1000) as f32 / 1000.0
        })
        .collect();
    Tensor::from_vec(&[n, 1, hw, hw], data)
}

fn tiny_env(seed: u64) -> DroneEnv {
    DroneEnv::new(EnvKind::IndoorApartment, seed)
        .with_camera(DepthCamera::new(16, 16, 1.5, 20.0, 0.01))
}

/// Quantised greedy actions equal argmax over the snapshot's own
/// batched Q-values, on every integer backend × pool size — the agent
/// adds routing, never arithmetic.
#[test]
fn quantised_acting_matches_engine_bitwise() {
    let obs = obs_batch(4, 16, 7);
    for be in QGemmBackend::ALL {
        for pool_threads in [1usize, 2, 7] {
            let pool = mramrl_nn::pool::ThreadPool::new(pool_threads);
            let _installed = pool.install();
            let mut agent =
                QAgent::new(&spec(), 3).with_acting_precision(ActingPrecision::FixedQ8_8);
            let mut engine = agent.quantized_snapshot().clone();
            engine.set_backend(be);
            // Match the agent's snapshot backend to the one under test.
            agent.quantized_snapshot(); // ensure built
            let mut ws = QWorkspace::for_net(&engine);
            let want: Vec<usize> = {
                let q = engine.q_values_batch(&obs, &mut ws);
                (0..q.batch()).map(|i| argmax(q.sample(i))).collect()
            };
            // Drive the agent's own snapshot through the same backend.
            let mut agent2 =
                QAgent::new(&spec(), 3).with_acting_precision(ActingPrecision::FixedQ8_8);
            agent2.set_gemm_backend(match be {
                QGemmBackend::Naive => mramrl_nn::GemmBackend::Naive,
                QGemmBackend::Blocked => mramrl_nn::GemmBackend::Blocked,
                QGemmBackend::Pooled => mramrl_nn::GemmBackend::Threaded,
                QGemmBackend::Simd => mramrl_nn::GemmBackend::Simd,
            });
            assert_eq!(
                agent2.greedy_actions(&obs),
                want,
                "backend={be} pool={pool_threads}"
            );
        }
    }
}

/// `q_values_batch` row `i` equals `q_values(obs_i)` bitwise in
/// deployment mode (the serial/batched contract holds through the
/// agent's routing layer).
#[test]
fn quantised_batched_q_values_match_serial() {
    let mut agent = QAgent::new(&spec(), 9).with_acting_precision(ActingPrecision::FixedQ8_8);
    let obs = obs_batch(3, 16, 21);
    let batched = agent.q_values_batch(&obs);
    for i in 0..3 {
        let single = agent.q_values(&Tensor::from_vec(&[1, 16, 16], obs.sample(i).to_vec()));
        assert_eq!(
            single
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            batched
                .sample(i)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "sample {i}"
        );
    }
}

/// A weight update invalidates the snapshot: acting after the update
/// reflects the new weights (no stale-snapshot acting).
#[test]
fn snapshot_refreshes_after_weight_update() {
    let mut agent = QAgent::new(&spec(), 5).with_acting_precision(ActingPrecision::FixedQ8_8);
    let obs = obs_batch(2, 16, 3);
    let before = agent.q_values_batch(&obs);

    // Push the output layer hard enough that Q8.8 values must move.
    let sgd = mramrl_nn::Sgd::new(0.5);
    let t = mramrl_rl::Transition {
        state: std::sync::Arc::new(Tensor::filled(&[1, 16, 16], 0.4)),
        action: 2,
        reward: 5.0,
        next_state: std::sync::Arc::new(Tensor::filled(&[1, 16, 16], 0.6)),
        terminal: true,
    };
    for _ in 0..10 {
        agent.accumulate_td(&t);
        agent.apply_update(&sgd, 1, u64::MAX);
    }
    let after = agent.q_values_batch(&obs);
    assert_ne!(before.data(), after.data(), "stale Q8.8 snapshot");

    // And the refreshed snapshot matches a from-scratch quantisation.
    let fresh = agent.quantized_snapshot().clone();
    let mut ws = QWorkspace::for_net(&fresh);
    let want = fresh.q_values_batch(&obs, &mut ws);
    assert_eq!(after.data(), want.data());
}

/// The measured fidelity claim: after a short training run, float and
/// Q8.8 greedy acting agree on ≥ 80 % of on-policy frames.
#[test]
fn trained_policy_argmax_fidelity_at_least_80_pct() {
    let mut env = tiny_env(5);
    let mut agent = QAgent::new(&spec(), 1);
    let _ = Trainer::new(TrainerConfig::online(400, 1)).run(&mut agent, &mut env);

    let mut obs = env.reset();
    let (mut agree, trials) = (0usize, 50usize);
    for _ in 0..trials {
        let x = Tensor::from_vec(&[1, 16, 16], obs.data().to_vec());
        agent.set_acting_precision(ActingPrecision::Float32);
        let af = agent.greedy_action(&x);
        agent.set_acting_precision(ActingPrecision::FixedQ8_8);
        let aq = agent.greedy_action(&x);
        agree += usize::from(af == aq);
        let s = env.step(mramrl_env::Action::from_index(af));
        obs = if s.crashed {
            env.reset()
        } else {
            s.observation
        };
    }
    assert!(
        agree * 5 >= trials * 4,
        "only {agree}/{trials} greedy actions agreed after training"
    );
}

/// Deployment-mode `evaluate_vec`: a VecEnv fleet acting through the
/// quantised engine produces a finite, seed-deterministic evaluation.
#[test]
fn evaluate_vec_runs_deployment_mode() {
    let run = || {
        let mut venv = VecEnv::from_envs(vec![tiny_env(4), tiny_env(5), tiny_env(6)]);
        let mut agent = QAgent::new(&spec(), 4).with_acting_precision(ActingPrecision::FixedQ8_8);
        evaluate_vec(&mut agent, &mut venv, 120, 0.05, 4)
    };
    let a = run();
    assert!(a.sfd >= 0.0 && a.mean_reward.is_finite());
    assert!(a.episodes > 0);
    let b = run();
    assert_eq!(a, b, "deployment-mode evaluation must be deterministic");
}

/// Float and quantised evaluate_vec run the same harness; the quantised
/// one must not silently fall back to float (different Q-values ⇒
/// generally different trajectories ⇒ usually different SFD; equality of
/// Q-values rows is the real check).
#[test]
fn deployment_mode_actually_quantises() {
    let mut agent = QAgent::new(&spec(), 8);
    let obs = obs_batch(2, 16, 13);
    agent.set_acting_precision(ActingPrecision::Float32);
    let qf = agent.q_values_batch(&obs);
    agent.set_acting_precision(ActingPrecision::FixedQ8_8);
    let qq = agent.q_values_batch(&obs);
    // Quantised values sit on the Q8.8 grid; float ones generally don't.
    let on_grid = |v: f32| (v * 256.0 - (v * 256.0).round()).abs() < 1e-4;
    assert!(qq.data().iter().all(|&v| on_grid(v)));
    assert!(
        qf.data().iter().zip(qq.data()).any(|(a, b)| a != b),
        "quantised path returned float bits"
    );
}
