//! Property: a [`ShardedReplay`] pushed fleet-major is indistinguishable
//! from the pinned serial interleaving's **single** buffer — same
//! contents in the same merged order, same eviction, and the same
//! sampled sequence from the same RNG — across lane widths {1, 2, 7}
//! and shard counts {1, 2, 4}.

use std::sync::Arc;

use mramrl_nn::Tensor;
use mramrl_rl::{ReplayBuffer, ShardedReplay, Transition};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A transition tagged with a unique id in `reward` (and a distinct
/// frame, so content equality is not vacuous).
fn tagged(id: usize) -> Transition {
    Transition {
        state: Arc::new(Tensor::filled(&[1, 2, 2], id as f32)),
        action: id % 5,
        reward: id as f32,
        next_state: Arc::new(Tensor::filled(&[1, 2, 2], id as f32 + 0.5)),
        terminal: id % 3 == 0,
    }
}

proptest! {
    /// Push `rounds` rounds fleet-major into S shards and into one
    /// single buffer of the summed capacity; at every round boundary the
    /// merged view equals the single buffer element-for-element, and a
    /// shared RNG draws the identical sample sequence from both.
    #[test]
    fn merged_view_equals_single_buffer(
        ki in 0usize..3,
        si in 0usize..3,
        per_rounds in 1usize..4,
        rounds in 1usize..10,
        seed in 0u64..1000,
    ) {
        let k = [1usize, 2, 7][ki];
        let s = [1usize, 2, 4][si];
        let per_shard = per_rounds * k;
        let sharded_capacity = s * per_shard;
        let mut sharded = ShardedReplay::new(s, per_shard, k);
        let mut single = ReplayBuffer::new(sharded_capacity);

        let mut id = 0usize;
        for _round in 0..rounds {
            // The pinned serial interleaving: fleet-major, lane-major.
            for f in 0..s {
                for _lane in 0..k {
                    let t = tagged(id);
                    id += 1;
                    single.push(t.clone());
                    sharded.push(f, t);
                }
            }

            // Contents AND order, at the round boundary.
            prop_assert_eq!(sharded.len(), single.len());
            for j in 0..single.len() {
                let a = sharded.merged_get(j).expect("in range");
                let b = single.get(j).expect("in range");
                prop_assert_eq!(a.reward, b.reward, "merged order diverged at {}", j);
                prop_assert_eq!(a.state.data(), b.state.data());
                prop_assert_eq!(a.next_state.data(), b.next_state.data());
                prop_assert_eq!(a.action, b.action);
                prop_assert_eq!(a.terminal, b.terminal);
            }

            // Same RNG, same sampled sequence.
            let lanes = s * k;
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let mut idx = Vec::new();
            sharded.sample_indices(&mut rng_a, lanes, &mut idx);
            prop_assert_eq!(idx.len(), lanes);
            for &i in &idx {
                let want = single.get(rng_b.gen_range(0..single.len())).expect("in range");
                let got = sharded.merged_get(i).expect("in range");
                prop_assert_eq!(got.reward, want.reward, "sample stream diverged");
            }
        }
    }

    /// Evictions stay per-shard FIFO: after any number of whole rounds,
    /// the merged view holds exactly the newest `capacity` transitions
    /// in push order.
    #[test]
    fn eviction_keeps_newest_whole_rounds(
        ki in 0usize..3,
        si in 0usize..3,
        per_rounds in 1usize..3,
        rounds in 1usize..12,
    ) {
        let k = [1usize, 2, 7][ki];
        let s = [1usize, 2, 4][si];
        let per_shard = per_rounds * k;
        let mut sharded = ShardedReplay::new(s, per_shard, k);
        let mut id = 0usize;
        for _ in 0..rounds {
            for f in 0..s {
                for _ in 0..k {
                    sharded.push(f, tagged(id));
                    id += 1;
                }
            }
        }
        let total = rounds * s * k;
        let kept = total.min(s * per_shard);
        prop_assert_eq!(sharded.len(), kept);
        for j in 0..kept {
            let t = sharded.merged_get(j).expect("in range");
            prop_assert_eq!(t.reward as usize, total - kept + j, "not the newest window in order");
        }
    }
}
