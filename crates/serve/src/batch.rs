//! The shared flush body: one coalesced engine pass over a batch of
//! per-drone observation requests.

use mramrl_nn::{QWorkspace, QuantizedNet, Tensor};

/// One drone's observation, submitted for an action decision.
#[derive(Debug, Clone)]
pub struct ObsRequest {
    /// Caller-chosen drone identity, echoed back on the [`Decision`].
    pub drone_id: u64,
    /// The `[C, H, W]` observation (must match the served net's
    /// [`mramrl_nn::NetworkSpec::input_shape`]).
    pub obs: Tensor,
}

/// The action decided for one [`ObsRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The request's drone identity.
    pub drone_id: u64,
    /// Greedy action index (per-row argmax of the batched Q-values,
    /// first-wins tie-break via [`mramrl_nn::argmax`]).
    pub action: usize,
    /// The snapshot generation that produced this decision — every
    /// decision of a flush carries the same one (no torn reads).
    pub generation: u64,
}

/// Decides a whole coalesced batch with **one** engine pass: stacks the
/// observations into a `[N, C, H, W]` batch, runs
/// [`QuantizedNet::q_values_batch`], and takes each row's argmax.
///
/// This is the single flush body shared by the live [`crate::Service`]
/// worker and [`crate::replay_trace`], which is what makes their
/// decisions the same code path. Because the engine pins batched ≡
/// serial bit-identity (row `i` of a batch equals the batch-of-1
/// forward of sample `i` — see `docs/fixed_point.md`), **how requests
/// are grouped into batches cannot change any drone's action**, only
/// how fast the decisions arrive. That is the load-bearing fact behind
/// the serving determinism contract.
///
/// Returns one [`Decision`] per request, in request order, all stamped
/// with `generation`. An empty batch returns an empty vec without
/// touching the engine.
///
/// # Panics
///
/// Panics if the requests carry mixed observation shapes, or if the
/// observation shape does not match the net's input (the engine's own
/// shape check).
pub fn decide_batch(
    net: &QuantizedNet,
    generation: u64,
    reqs: &[ObsRequest],
    ws: &mut QWorkspace,
) -> Vec<Decision> {
    if reqs.is_empty() {
        return Vec::new();
    }
    let q = net.q_values_batch(&stack_observations(reqs), ws);
    reqs.iter()
        .enumerate()
        .map(|(i, r)| Decision {
            drone_id: r.drone_id,
            action: mramrl_nn::argmax(q.sample(i)),
            generation,
        })
        .collect()
}

/// Stacks per-request observations `[C,H,W]` into one `[N,C,H,W]` batch.
fn stack_observations(reqs: &[ObsRequest]) -> Tensor {
    let first = reqs[0].obs.shape();
    let mut shape = Vec::with_capacity(first.len() + 1);
    shape.push(reqs.len());
    shape.extend_from_slice(first);
    let mut data = Vec::with_capacity(reqs.len() * reqs[0].obs.len());
    for r in reqs {
        assert_eq!(
            r.obs.shape(),
            first,
            "mixed observation shapes in one serving batch (drone {})",
            r.drone_id
        );
        data.extend_from_slice(r.obs.data());
    }
    Tensor::from_vec(&shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mramrl_nn::NetworkSpec;
    use std::sync::Arc;

    fn qnet(seed: u64) -> Arc<QuantizedNet> {
        let spec = NetworkSpec::micro(16, 1, 5);
        Arc::new(QuantizedNet::from_network(&spec, &spec.build(seed)).expect("valid spec"))
    }

    fn obs(fill: f32) -> Tensor {
        Tensor::filled(&[1, 16, 16], fill)
    }

    #[test]
    fn batch_decisions_equal_serial_forwards() {
        let net = qnet(11);
        let reqs: Vec<ObsRequest> = (0..7)
            .map(|d| ObsRequest {
                drone_id: d,
                obs: obs(0.1 + 0.1 * d as f32),
            })
            .collect();
        let mut ws = QWorkspace::new();
        let got = decide_batch(&net, 3, &reqs, &mut ws);
        assert_eq!(got.len(), reqs.len());
        for (d, r) in got.iter().zip(&reqs) {
            let serial = net.forward(&r.obs);
            assert_eq!(
                d.action,
                mramrl_nn::argmax(serial.data()),
                "drone {}",
                r.drone_id
            );
            assert_eq!(d.drone_id, r.drone_id);
            assert_eq!(d.generation, 3);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let net = qnet(1);
        let mut ws = QWorkspace::new();
        assert!(decide_batch(&net, 0, &[], &mut ws).is_empty());
    }

    #[test]
    #[should_panic(expected = "mixed observation shapes")]
    fn mixed_shapes_panic() {
        let net = qnet(1);
        let mut ws = QWorkspace::new();
        let reqs = vec![
            ObsRequest {
                drone_id: 0,
                obs: obs(0.5),
            },
            ObsRequest {
                drone_id: 1,
                obs: Tensor::filled(&[1, 8, 8], 0.5),
            },
        ];
        let _ = decide_batch(&net, 0, &reqs, &mut ws);
    }
}
