//! Drone-fleet inference serving: dynamic request batching over
//! hot-swappable [`QuantizedNet`](mramrl_nn::QuantizedNet) snapshots.
//!
//! The paper's deployment story (Yoon et al., DATE 2019) is a fleet of
//! drones acting through a frozen STT-MRAM-resident net, and the
//! workspace's own measurements (`BENCH_batch.json`) show batch-32
//! Q8.8 inference is ~6× batch-1 — so a request coalescer is the
//! single biggest serving-throughput lever. This crate is that layer:
//!
//! * [`SnapshotStore`] — a double-buffered, generation-counted holder
//!   for the currently-served Q8.8 snapshot. Online learning publishes
//!   a new snapshot ([`SnapshotStore::publish_agent`] via
//!   [`QAgent::quantized_snapshot_shared`](mramrl_rl::QAgent::quantized_snapshot_shared));
//!   in-flight batches keep the frozen generation alive through their
//!   own `Arc` — a swap can never tear a batch. [`LearnerPublisher`]
//!   wires the actor/learner trainer's target syncs straight into the
//!   store (`Trainer::run_parallel_hooked`), so served decisions track
//!   the newest generation mid-training.
//! * [`Service`] / [`ServiceClient`] — a long-lived worker thread that
//!   coalesces concurrent per-drone requests into engine batches under
//!   the dynamic-batching policy of [`ServeConfig`]: flush when
//!   `max_batch` requests are waiting **or** the oldest request's
//!   latency deadline expires, whichever comes first.
//! * [`decide_batch`] — the shared flush body (stack observations, one
//!   batched engine pass, per-row argmax) used by both the live worker
//!   and the replay harness, so their decisions are the same code path.
//! * [`replay_trace`] / [`RequestTrace`] — the determinism harness: a
//!   trace of logical-time request and publish events replayed through
//!   the identical batching policy produces an [`ActionLog`] that is
//!   **bit-identical** across GEMM backends and pool sizes (the same
//!   discipline as the pool combinators; pinned in
//!   `crates/serve/tests/determinism.rs`).
//!
//! Policy, deadline semantics, snapshot lifecycle and the determinism
//! contract are documented in `docs/serving.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod replay;
mod service;
mod snapshot;

pub use batch::{decide_batch, Decision, ObsRequest};
pub use replay::{replay_trace, ActionLog, ActionRecord, RequestTrace, TraceEvent};
pub use service::{ServeConfig, ServeStats, Service, ServiceClient};
pub use snapshot::{LearnerPublisher, SnapshotStore};
