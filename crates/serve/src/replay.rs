//! Replayable request traces — the serving determinism harness.
//!
//! Live batching depends on wall-clock arrival times, which no two runs
//! reproduce. The replay harness removes the clock: a [`RequestTrace`]
//! carries *logical* microsecond timestamps, and [`replay_trace`] runs
//! the exact dynamic-batching policy ([`crate::ServeConfig`]) against
//! those timestamps. Fixed trace + fixed snapshots ⇒ a bit-identical
//! [`ActionLog`], across GEMM backends and pool sizes — the same
//! discipline the pool combinators pin (`docs/threading.md`), one layer
//! up.

use std::sync::Arc;

use mramrl_nn::{pool, QWorkspace, QuantizedNet, Tensor};

use crate::batch::{decide_batch, ObsRequest};
use crate::service::ServeConfig;
use crate::snapshot::SnapshotStore;

/// One logical-time event of a serving trace.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A drone submits an observation at logical time `at_us`.
    Request {
        /// Logical arrival time, microseconds.
        at_us: u64,
        /// Drone identity, echoed into the action log.
        drone_id: u64,
        /// The `[C, H, W]` observation.
        obs: Tensor,
    },
    /// Online learning publishes a new snapshot at logical time `at_us`.
    Publish {
        /// Logical publish time, microseconds.
        at_us: u64,
        /// The snapshot to serve from this point on.
        net: Arc<QuantizedNet>,
    },
}

impl TraceEvent {
    /// The event's logical timestamp.
    pub fn at_us(&self) -> u64 {
        match self {
            Self::Request { at_us, .. } | Self::Publish { at_us, .. } => *at_us,
        }
    }
}

/// A time-ordered sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// Builds a trace from events, stably sorted by timestamp (events
    /// sharing a timestamp keep their given order — part of what makes
    /// a trace a complete, reproducible description of a run).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(TraceEvent::at_us);
        Self { events }
    }

    /// The events, in replay order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A deterministic synthetic fleet: `drones` drones each submit one
    /// request per step for `steps` steps, steps `period_us` apart,
    /// drones staggered 1 µs apart within a step. Observations are
    /// hash-derived values in `[0, 1)` from `seed` — no RNG state, so
    /// the same arguments always build the identical trace.
    pub fn synthetic_fleet(
        drones: u64,
        steps: u64,
        period_us: u64,
        obs_shape: [usize; 3],
        seed: u64,
    ) -> Self {
        let len = obs_shape.iter().product::<usize>();
        let mut events = Vec::with_capacity((drones * steps) as usize);
        for s in 0..steps {
            for d in 0..drones {
                let data: Vec<f32> = (0..len)
                    .map(|i| {
                        let h = hash3(seed, s * drones + d, i as u64);
                        (h >> 40) as f32 / (1u64 << 24) as f32
                    })
                    .collect();
                events.push(TraceEvent::Request {
                    at_us: s * period_us + d,
                    drone_id: d,
                    obs: Tensor::from_vec(&[obs_shape[0], obs_shape[1], obs_shape[2]], data),
                });
            }
        }
        Self::from_events(events)
    }
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = a ^ 0x9E37_79B9_7F4A_7C15;
    for v in [b, c] {
        h ^= v.wrapping_mul(0x2545_F491_4F6C_DD1D);
        h = h.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h ^ (h >> 29)
}

/// One decided request of an [`ActionLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionRecord {
    /// Decision sequence number (log order).
    pub seq: u64,
    /// The request's drone identity.
    pub drone_id: u64,
    /// Decided action index.
    pub action: u32,
    /// Snapshot generation that produced the decision.
    pub generation: u64,
}

/// The replayed run's complete output: one record per request, in
/// decision order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActionLog {
    records: Vec<ActionRecord>,
}

impl ActionLog {
    /// The records, in decision order.
    pub fn records(&self) -> &[ActionRecord] {
        &self.records
    }

    /// Canonical byte serialisation (all fields little-endian, record
    /// order) — "byte-identical action logs" means equal `to_bytes`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.records.len() * 28);
        for r in &self.records {
            out.extend_from_slice(&r.seq.to_le_bytes());
            out.extend_from_slice(&r.drone_id.to_le_bytes());
            out.extend_from_slice(&r.action.to_le_bytes());
            out.extend_from_slice(&r.generation.to_le_bytes());
        }
        out
    }

    /// FNV-1a digest of [`ActionLog::to_bytes`], for cheap equality
    /// pinning across runs.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Replays `trace` through the dynamic-batching policy of `cfg`,
/// serving from `initial` (generation 0), and returns the action log.
///
/// Batching is decided purely in trace logical time:
///
/// * a pending batch flushes when it reaches `cfg.max_batch` requests;
/// * before each event at time `t`, the pending batch flushes if its
///   oldest request's deadline expired **strictly before** `t` (a
///   request arriving exactly at the deadline instant still joins);
/// * a [`TraceEvent::Publish`] advances the store's generation — later
///   flushes use the new snapshot, the still-pending batch keeps its
///   arrival order and flushes under the generation live at *flush*
///   time (one snapshot load per flush, exactly like the live worker);
/// * the trailing partial batch flushes at end of trace.
///
/// Decisions come from [`decide_batch`] — the same flush body as the
/// live worker. Engine passes run on the caller's thread and current
/// pool unless `cfg.pool` is set, in which case it is installed for the
/// duration; either way the log is bit-identical at any pool size and
/// GEMM backend (pinned in `crates/serve/tests/determinism.rs`).
pub fn replay_trace(
    trace: &RequestTrace,
    initial: Arc<QuantizedNet>,
    cfg: &ServeConfig,
) -> ActionLog {
    assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
    let _pool_guard = cfg.pool.clone().map(pool::install_handle);
    let store = SnapshotStore::new(initial);
    let mut ws = QWorkspace::new();
    let mut log = ActionLog::default();
    let mut seq = 0u64;
    let mut pending: Vec<ObsRequest> = Vec::new();
    let mut oldest_at = 0u64;

    let mut flush = |pending: &mut Vec<ObsRequest>, ws: &mut QWorkspace, seq: &mut u64| {
        let (net, generation) = store.snapshot();
        for d in decide_batch(&net, generation, pending, ws) {
            log.records.push(ActionRecord {
                seq: *seq,
                drone_id: d.drone_id,
                action: d.action as u32,
                generation: d.generation,
            });
            *seq += 1;
        }
        pending.clear();
    };

    for ev in trace.events() {
        if !pending.is_empty() && oldest_at + cfg.max_delay_us < ev.at_us() {
            flush(&mut pending, &mut ws, &mut seq);
        }
        match ev {
            TraceEvent::Request {
                at_us,
                drone_id,
                obs,
            } => {
                if pending.is_empty() {
                    oldest_at = *at_us;
                }
                pending.push(ObsRequest {
                    drone_id: *drone_id,
                    obs: obs.clone(),
                });
                if pending.len() >= cfg.max_batch {
                    flush(&mut pending, &mut ws, &mut seq);
                }
            }
            TraceEvent::Publish { net, .. } => {
                store.publish(Arc::clone(net));
            }
        }
    }
    if !pending.is_empty() {
        flush(&mut pending, &mut ws, &mut seq);
    }
    log
}
