//! The live serving loop: a worker thread coalescing concurrent
//! requests into engine batches under the dynamic-batching policy.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mramrl_nn::pool::{self, PoolHandle};
use mramrl_nn::QWorkspace;

use crate::batch::{decide_batch, Decision, ObsRequest};
use crate::snapshot::SnapshotStore;

/// Dynamic-batching policy for the serving worker (and the replay
/// harness, which interprets `max_delay_us` in trace logical time).
///
/// A flush happens when `max_batch` requests are waiting **or** the
/// oldest waiting request has been queued for `max_delay_us`, whichever
/// comes first. `max_batch = 1` with a zero deadline degenerates to
/// request-per-call serving — the baseline `bench_serve_json` measures
/// coalescing against.
#[derive(Clone)]
pub struct ServeConfig {
    /// Flush as soon as this many requests are waiting (≥ 1).
    pub max_batch: usize,
    /// Latency deadline in microseconds, measured from the arrival of
    /// the oldest waiting request; a partial batch flushes when it
    /// expires. Zero means never hold a request back for coalescing.
    pub max_delay_us: u64,
    /// Pool the worker thread installs for its engine passes
    /// ([`pool::install_handle`]); `None` leaves the worker on the
    /// process default. Changes throughput only, never results — the
    /// engine is bit-identical at any pool size.
    pub pool: Option<PoolHandle>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay_us: 2_000,
            pool: None,
        }
    }
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_batch", &self.max_batch)
            .field("max_delay_us", &self.max_delay_us)
            .field("pool", &self.pool.as_ref().map(PoolHandle::threads))
            .finish()
    }
}

/// Counters the service maintains, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests received by the worker.
    pub requests: u64,
    /// Coalesced flushes (engine passes) performed.
    pub batches: u64,
    /// Largest single flush.
    pub max_batch_seen: u64,
}

#[derive(Default)]
struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
}

enum SlotState {
    Waiting,
    Done(Decision),
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, d: Decision) {
        *self.state.lock().expect("slot poisoned") = SlotState::Done(d);
        self.cv.notify_one();
    }

    fn wait(&self) -> Decision {
        let mut st = self.state.lock().expect("slot poisoned");
        loop {
            match *st {
                SlotState::Done(d) => return d,
                SlotState::Waiting => st = self.cv.wait(st).expect("slot wait"),
            }
        }
    }
}

struct Submission {
    req: ObsRequest,
    slot: Arc<Slot>,
}

/// A long-lived serving loop: one worker thread owns the engine
/// workspace and coalesces requests from any number of
/// [`ServiceClient`]s into batched engine passes.
///
/// The worker performs **one** [`SnapshotStore::snapshot`] load per
/// flush, so every decision of a batch is produced by — and stamped
/// with — exactly one snapshot generation, no matter how publishes
/// interleave with traffic.
///
/// Dropping (or [`Service::shutdown`]-ing) the service waits for the
/// worker, which first drains and answers every already-submitted
/// request; the worker only exits once every [`ServiceClient`] has been
/// dropped too, so drop clients before shutting down.
pub struct Service {
    tx: Option<mpsc::Sender<Submission>>,
    worker: Option<JoinHandle<()>>,
    store: Arc<SnapshotStore>,
    stats: Arc<StatsInner>,
}

impl Service {
    /// Spawns the worker thread serving `store` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch` is zero.
    pub fn spawn(store: Arc<SnapshotStore>, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let (tx, rx) = mpsc::channel::<Submission>();
        let stats = Arc::new(StatsInner::default());
        let worker_store = Arc::clone(&store);
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("mramrl-serve".into())
            .spawn(move || worker_loop(&rx, &worker_store, &cfg, &worker_stats))
            .expect("spawn serving worker");
        Self {
            tx: Some(tx),
            worker: Some(worker),
            store,
            stats,
        }
    }

    /// A new client handle; clients are cheap and `Send`, one per
    /// caller thread.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            tx: self.tx.as_ref().expect("service live").clone(),
            store: Arc::clone(&self.store),
        }
    }

    /// The snapshot store this service serves from (publish new
    /// generations through it at any time).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            max_batch_seen: self.stats.max_batch_seen.load(Ordering::Relaxed),
        }
    }

    /// A cheap `Send + 'static` probe of the served-request counter —
    /// for publisher threads that pace snapshot publishes against
    /// traffic without holding a reference to the service.
    pub fn stats_probe(&self) -> impl Fn() -> u64 + Send + 'static {
        let stats = Arc::clone(&self.stats);
        move || stats.requests.load(Ordering::Relaxed)
    }

    /// Stops accepting new submissions, waits for the worker to drain
    /// every pending request, and returns the final counters. Blocks
    /// until all [`ServiceClient`]s have been dropped.
    pub fn shutdown(mut self) -> ServeStats {
        self.join_worker();
        self.stats()
    }

    fn join_worker(&mut self) {
        self.tx = None; // close our end of the channel
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_worker();
    }
}

/// A handle for submitting observation requests to a [`Service`].
#[derive(Clone)]
pub struct ServiceClient {
    tx: mpsc::Sender<Submission>,
    store: Arc<SnapshotStore>,
}

impl ServiceClient {
    /// Submits one observation and blocks until its coalesced batch has
    /// been decided.
    ///
    /// # Panics
    ///
    /// Panics if `obs` does not match the served net's input shape
    /// (validated here, in the caller's thread, so a malformed request
    /// can never take down the shared worker), or if the service worker
    /// has terminated.
    pub fn decide(&self, drone_id: u64, obs: mramrl_nn::Tensor) -> Decision {
        let expected = self.store.input_shape();
        assert_eq!(
            obs.shape(),
            &expected,
            "observation shape does not match the served network input"
        );
        let slot = Arc::new(Slot::new());
        self.tx
            .send(Submission {
                req: ObsRequest { drone_id, obs },
                slot: Arc::clone(&slot),
            })
            .expect("serving worker terminated");
        slot.wait()
    }
}

fn worker_loop(
    rx: &mpsc::Receiver<Submission>,
    store: &SnapshotStore,
    cfg: &ServeConfig,
    stats: &StatsInner,
) {
    let _pool_guard = cfg.pool.clone().map(pool::install_handle);
    let mut ws = QWorkspace::new();
    // Outer recv: block indefinitely for the batch-opening request.
    while let Ok(first) = rx.recv() {
        let deadline = Instant::now() + Duration::from_micros(cfg.max_delay_us);
        let mut pending = vec![first];
        // Inner fill: wait for more only while under max_batch and
        // before the oldest request's deadline.
        while pending.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(sub) => pending.push(sub),
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        flush(store, &mut ws, pending, stats);
    }
}

fn flush(store: &SnapshotStore, ws: &mut QWorkspace, pending: Vec<Submission>, stats: &StatsInner) {
    let n = pending.len() as u64;
    stats.requests.fetch_add(n, Ordering::Relaxed);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.max_batch_seen.fetch_max(n, Ordering::Relaxed);

    // One snapshot load per flush: the generation stamped below is the
    // snapshot every decision in this batch was computed with.
    let (net, generation) = store.snapshot();
    let (reqs, slots): (Vec<ObsRequest>, Vec<Arc<Slot>>) =
        pending.into_iter().map(|s| (s.req, s.slot)).unzip();
    let decisions = decide_batch(&net, generation, &reqs, ws);
    for (slot, decision) in slots.iter().zip(decisions) {
        slot.fulfill(decision);
    }
}
