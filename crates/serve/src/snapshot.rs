//! The generation-counted snapshot holder the serving layer acts through.

use std::sync::{Arc, Mutex};

use mramrl_nn::QuantizedNet;
use mramrl_rl::{LearnerHook, QAgent};

/// A double-buffered, generation-counted holder for the currently
/// served Q8.8 snapshot.
///
/// "Double-buffered" here is the `Arc` form of the hardware idiom: the
/// store holds one reference to the live snapshot, and every in-flight
/// batch holds its own — publishing swaps the store's reference without
/// touching the snapshot a worker is mid-batch on, so a batch is always
/// produced entirely by one generation (the no-torn-reads contract,
/// pinned in `crates/serve/tests/determinism.rs`).
///
/// The generation counter starts at 0 for the snapshot the store is
/// built with and increments once per publish. Workers load
/// `(net, generation)` with **one** [`SnapshotStore::snapshot`] call per
/// flush, so the generation they stamp on responses is exactly the
/// snapshot they computed with.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Slot>,
}

#[derive(Debug)]
struct Slot {
    net: Arc<QuantizedNet>,
    generation: u64,
}

impl SnapshotStore {
    /// Creates a store serving `initial` as generation 0.
    pub fn new(initial: Arc<QuantizedNet>) -> Self {
        Self {
            current: Mutex::new(Slot {
                net: initial,
                generation: 0,
            }),
        }
    }

    /// The live snapshot and its generation, as one atomic pair.
    ///
    /// Callers serving a batch must call this **once per flush** and
    /// use both values together — that is what makes the stamped
    /// generation authoritative for every decision in the batch.
    pub fn snapshot(&self) -> (Arc<QuantizedNet>, u64) {
        let slot = self.current.lock().expect("snapshot store poisoned");
        (Arc::clone(&slot.net), slot.generation)
    }

    /// Publishes `net` as the new live snapshot and returns its
    /// generation.
    ///
    /// The swap happens under a short lock; the previous snapshot stays
    /// alive for exactly as long as in-flight batches still reference
    /// it.
    pub fn publish(&self, net: Arc<QuantizedNet>) -> u64 {
        let mut slot = self.current.lock().expect("snapshot store poisoned");
        slot.generation += 1;
        slot.net = net;
        slot.generation
    }

    /// Publishes the agent's current Q8.8 snapshot — the online-learning
    /// handoff. This is
    /// [`QAgent::quantized_snapshot_shared`] followed by
    /// [`SnapshotStore::publish`]: the agent's cached snapshot is shared
    /// (no copy) and served until the next publish, while training keeps
    /// mutating the float weights underneath.
    pub fn publish_agent(&self, agent: &mut QAgent) -> u64 {
        self.publish(agent.quantized_snapshot_shared())
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.current
            .lock()
            .expect("snapshot store poisoned")
            .generation
    }

    /// The `[C, H, W]` observation shape the live snapshot expects —
    /// what each [`crate::ObsRequest`] observation must match.
    pub fn input_shape(&self) -> [usize; 3] {
        self.current
            .lock()
            .expect("snapshot store poisoned")
            .net
            .spec()
            .input_shape
    }
}

/// The learner → serving handoff: a [`LearnerHook`] that publishes the
/// agent's Q8.8 snapshot to a [`SnapshotStore`] on **every target
/// sync** of `Trainer::run_parallel_hooked`.
///
/// Wire it in and the serving fleet tracks the newest learner
/// generation mid-training — a [`crate::Service`] worker over the same
/// store starts answering with the fresh weights at its next flush,
/// while the learner keeps mutating the float net underneath. The hook
/// only *reads* the agent (snapshot + publish), so the training
/// trajectory stays bit-identical to the unhooked run.
#[derive(Debug, Clone)]
pub struct LearnerPublisher {
    store: Arc<SnapshotStore>,
}

impl LearnerPublisher {
    /// A publisher pushing into `store`.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        Self { store }
    }

    /// The store this publisher feeds.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }
}

impl LearnerHook for LearnerPublisher {
    fn on_target_sync(&mut self, agent: &mut QAgent, _updates: u64) {
        self.store.publish_agent(agent);
    }
}
