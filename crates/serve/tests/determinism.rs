//! The serving determinism contract:
//!
//! * a fixed request trace + fixed snapshots replays to a
//!   **byte-identical** action log across GEMM backends and pool sizes;
//! * snapshot hot-swap never yields a mixed-generation response — every
//!   decision matches the single-net forward of the generation it is
//!   stamped with;
//! * the live service's decisions equal the engine's, and coalescing
//!   actually coalesces.

use std::collections::BTreeSet;
use std::sync::Arc;

use mramrl_nn::pool::ThreadPool;
use mramrl_nn::{NetworkSpec, QGemmBackend, QuantizedNet, Tensor};
use mramrl_serve::{replay_trace, RequestTrace, ServeConfig, Service, SnapshotStore, TraceEvent};

const OBS_SHAPE: [usize; 3] = [1, 16, 16];

fn spec() -> NetworkSpec {
    NetworkSpec::micro(16, 1, 5)
}

fn qnet(seed: u64, backend: QGemmBackend) -> Arc<QuantizedNet> {
    let spec = spec();
    let mut q = QuantizedNet::from_network(&spec, &spec.build(seed)).expect("valid spec");
    q.set_backend(backend);
    Arc::new(q)
}

/// A small deterministic set of distinct observations.
fn obs_set(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let data: Vec<f32> = (0..OBS_SHAPE.iter().product::<usize>())
                .map(|j| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(j as u64)
                        .wrapping_mul(0x2545_F491_4F6C_DD1D);
                    (h >> 40) as f32 / (1u64 << 24) as f32
                })
                .collect();
            Tensor::from_vec(&OBS_SHAPE, data)
        })
        .collect()
}

/// Expected greedy action of `net` for each observation, via the
/// batch-of-1 engine path (batched ≡ serial is the engine's contract).
fn expected_actions(net: &QuantizedNet, obs: &[Tensor]) -> Vec<usize> {
    obs.iter()
        .map(|o| mramrl_nn::argmax(net.forward(o).data()))
        .collect()
}

#[test]
fn replay_is_bit_identical_across_backends_and_pools() {
    let trace = RequestTrace::synthetic_fleet(6, 20, 300, OBS_SHAPE, 9);
    let cfg = ServeConfig {
        max_batch: 4,
        max_delay_us: 500,
        pool: None,
    };
    let mut reference: Option<(Vec<u8>, u64)> = None;
    for backend in QGemmBackend::ALL {
        for pool_threads in [1usize, 4] {
            let pool = ThreadPool::new(pool_threads);
            let _installed = pool.install();
            let log = replay_trace(&trace, qnet(42, backend), &cfg);
            assert_eq!(
                log.records().len(),
                trace.len(),
                "{backend:?} pool={pool_threads}: every request decided exactly once"
            );
            let bytes = (log.to_bytes(), log.digest());
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(
                    r, &bytes,
                    "{backend:?} pool={pool_threads}: action log diverged"
                ),
            }
        }
    }
}

#[test]
fn replay_batching_policy_is_deadline_or_max_batch() {
    // 5 requests at t = 0..5 µs, then a long gap, then 1 more: with
    // max_batch = 4 and a 100 µs deadline the grouping must be
    // [4 (cap), 1 (deadline), 1 (end of trace)] — visible through seq
    // ordering and the one-flush-one-generation stamp after a publish
    // lands between the groups.
    let net0 = qnet(1, QGemmBackend::Blocked);
    let net1 = qnet(2001, QGemmBackend::Blocked);
    let obs = obs_set(1).remove(0);
    let mut events: Vec<TraceEvent> = (0..5u64)
        .map(|i| TraceEvent::Request {
            at_us: i,
            drone_id: i,
            obs: obs.clone(),
        })
        .collect();
    events.push(TraceEvent::Publish {
        at_us: 50,
        net: Arc::clone(&net1),
    });
    events.push(TraceEvent::Request {
        at_us: 10_000,
        drone_id: 99,
        obs: obs.clone(),
    });
    let log = replay_trace(
        &RequestTrace::from_events(events),
        net0,
        &ServeConfig {
            max_batch: 4,
            max_delay_us: 100,
            pool: None,
        },
    );
    let gens: Vec<u64> = log.records().iter().map(|r| r.generation).collect();
    // First four flush at the cap before the publish (gen 0); the fifth
    // flushes on its deadline, which expires after the publish at 50 µs
    // (gen 1); the last flushes at end of trace (gen 1).
    assert_eq!(gens, vec![0, 0, 0, 0, 1, 1]);
    assert_eq!(
        log.records().iter().map(|r| r.drone_id).collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4, 99]
    );
}

#[test]
fn replay_hot_swap_has_no_torn_reads() {
    // Four generations, each a different net. Every record must match
    // the single-net forward of the generation it is stamped with —
    // a batch computed partly on one net and stamped with another
    // cannot pass wherever the two nets disagree.
    let backend = QGemmBackend::Blocked;
    let nets: Vec<Arc<QuantizedNet>> = (0..4u64).map(|g| qnet(g * 1000 + 7, backend)).collect();
    let drones = 12u64;
    let obs = obs_set(drones as usize);
    let expected: Vec<Vec<usize>> = nets.iter().map(|n| expected_actions(n, &obs)).collect();
    // The check has teeth only where generations disagree; with 4
    // random micro nets over 12 observations that is guaranteed in
    // practice, but assert it so the test can never go vacuous.
    assert!(
        (1..nets.len()).any(|g| expected[g] != expected[0]),
        "test nets all agree — pick different seeds"
    );

    // Interleave: each step all drones request (drone d uses obs[d]),
    // publishes land between steps 5/10/15.
    let mut events = Vec::new();
    for s in 0..20u64 {
        for g in 1..4u64 {
            if s == g * 5 {
                events.push(TraceEvent::Publish {
                    at_us: s * 100,
                    net: Arc::clone(&nets[g as usize]),
                });
            }
        }
        for d in 0..drones {
            events.push(TraceEvent::Request {
                at_us: s * 100 + 1 + d,
                drone_id: d,
                obs: obs[d as usize].clone(),
            });
        }
    }
    let log = replay_trace(
        &RequestTrace::from_events(events),
        Arc::clone(&nets[0]),
        &ServeConfig {
            max_batch: 5, // 5 ∤ 12: batches straddle step boundaries
            max_delay_us: 250,
            pool: None,
        },
    );
    assert_eq!(log.records().len(), 20 * drones as usize);
    let seen: BTreeSet<u64> = log.records().iter().map(|r| r.generation).collect();
    assert_eq!(
        seen,
        (0..4u64).collect::<BTreeSet<_>>(),
        "all four generations must actually serve traffic"
    );
    for r in log.records() {
        assert_eq!(
            r.action as usize, expected[r.generation as usize][r.drone_id as usize],
            "seq {}: decision does not match its stamped generation {}",
            r.seq, r.generation
        );
    }
}

#[test]
fn live_service_matches_engine_and_stays_generation_pure() {
    let backend = QGemmBackend::Blocked;
    let nets: Vec<Arc<QuantizedNet>> = (0..6u64).map(|g| qnet(g * 1000 + 7, backend)).collect();
    let n_obs = 8usize;
    let obs = obs_set(n_obs);
    let expected: Vec<Vec<usize>> = nets.iter().map(|n| expected_actions(n, &obs)).collect();
    assert!((1..nets.len()).any(|g| expected[g] != expected[0]));

    let store = Arc::new(SnapshotStore::new(Arc::clone(&nets[0])));
    let service = Service::spawn(
        Arc::clone(&store),
        ServeConfig {
            max_batch: 8,
            max_delay_us: 500,
            pool: None,
        },
    );

    let clients = 4u64;
    let per_client = 40u64;
    let total = clients * per_client;
    // Publish generations 1..=5 as traffic passes request-count
    // thresholds — timing-free, so the swap always lands mid-traffic.
    let publisher = {
        let store = Arc::clone(&store);
        let stats = service.stats_probe();
        std::thread::spawn(move || {
            for g in 1..6u64 {
                let threshold = g * total / 6;
                while stats() < threshold {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                store.publish(Arc::clone(&nets[g as usize]));
            }
        })
    };

    let mut workers = Vec::new();
    for c in 0..clients {
        let client = service.client();
        let obs = obs.clone();
        let expected = expected.clone();
        workers.push(std::thread::spawn(move || {
            let mut gens = BTreeSet::new();
            for i in 0..per_client {
                let which = ((c * per_client + i) as usize) % obs.len();
                let d = client.decide(c, obs[which].clone());
                assert!(d.generation < 6, "unknown generation {}", d.generation);
                assert_eq!(
                    d.action, expected[d.generation as usize][which],
                    "client {c} req {i}: decision does not match generation {}",
                    d.generation
                );
                gens.insert(d.generation);
            }
            gens
        }));
    }
    let mut seen = BTreeSet::new();
    for w in workers {
        seen.extend(w.join().expect("client thread"));
    }
    publisher.join().expect("publisher thread");
    let stats = service.shutdown();
    assert_eq!(stats.requests, total);
    assert!(
        seen.len() >= 2,
        "hot swap never observed mid-traffic: generations {seen:?}"
    );
}

#[test]
fn live_service_coalesces_under_load() {
    let store = Arc::new(SnapshotStore::new(qnet(42, QGemmBackend::Blocked)));
    let service = Service::spawn(
        Arc::clone(&store),
        ServeConfig {
            max_batch: 8,
            max_delay_us: 50_000, // generous: fills always win
            pool: None,
        },
    );
    let obs = obs_set(4);
    let mut workers = Vec::new();
    for c in 0..8u64 {
        let client = service.client();
        let obs = obs.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..4u64 {
                let _ = client.decide(c, obs[(i as usize) % obs.len()].clone());
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread");
    }
    let stats = service.shutdown();
    assert_eq!(stats.requests, 32);
    assert!(
        stats.batches * 2 <= stats.requests,
        "no coalescing happened: {stats:?}"
    );
    assert!(stats.max_batch_seen >= 2, "{stats:?}");
}

#[test]
fn live_service_pool_injection_changes_nothing() {
    let backend = QGemmBackend::Pooled;
    let net = qnet(42, backend);
    let obs = obs_set(6);
    let expected = expected_actions(&net, &obs);
    for pool_threads in [1usize, 4] {
        let pool = ThreadPool::new(pool_threads);
        let service = Service::spawn(
            Arc::new(SnapshotStore::new(Arc::clone(&net))),
            ServeConfig {
                max_batch: 4,
                max_delay_us: 200,
                pool: Some(pool.handle()),
            },
        );
        let client = service.client();
        for (i, o) in obs.iter().enumerate() {
            let d = client.decide(i as u64, o.clone());
            assert_eq!(d.action, expected[i], "pool={pool_threads} obs {i}");
            assert_eq!(d.generation, 0);
        }
        drop(client);
        let stats = service.shutdown();
        assert_eq!(stats.requests, obs.len() as u64, "pool={pool_threads}");
    }
}
