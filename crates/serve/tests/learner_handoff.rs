//! The learner → serving handoff: `Trainer::run_parallel_hooked` with a
//! [`LearnerPublisher`] keeps a live [`Service`] on the newest snapshot
//! generation **mid-training** — every target sync publishes, and a
//! decision requested right after a publish is stamped with (and
//! computed by) that generation, not a stale one.

use std::sync::Arc;

use mramrl_env::{DepthCamera, DroneEnv, EnvKind, VecEnv};
use mramrl_nn::{NetworkSpec, Tensor};
use mramrl_rl::{LearnerHook, QAgent, Trainer, TrainerConfig};
use mramrl_serve::{LearnerPublisher, ServeConfig, Service, ServiceClient, SnapshotStore};

fn tiny_env(seed: u64) -> DroneEnv {
    DroneEnv::new(EnvKind::IndoorApartment, seed)
        .with_camera(DepthCamera::new(16, 16, 1.5, 20.0, 0.01))
}

fn fleets(n: usize, k: usize) -> Vec<VecEnv> {
    let envs: Vec<DroneEnv> = (0..n * k).map(|i| tiny_env(5 + i as u64)).collect();
    VecEnv::from_envs(envs).split(n)
}

/// Publishes via [`LearnerPublisher`], then immediately requests a
/// decision from the live service and records the generation it was
/// served with.
struct TrackingHook {
    publisher: LearnerPublisher,
    client: ServiceClient,
    obs: Tensor,
    served_generations: Vec<u64>,
}

impl LearnerHook for TrackingHook {
    fn on_target_sync(&mut self, agent: &mut QAgent, updates: u64) {
        self.publisher.on_target_sync(agent, updates);
        let expected = self.publisher.store().generation();
        let d = self.client.decide(updates, self.obs.clone());
        assert_eq!(
            d.generation, expected,
            "a decision requested after a publish must be served by the \
             just-published generation"
        );
        self.served_generations.push(d.generation);
    }
}

#[test]
fn served_decisions_track_newest_generation_mid_training() {
    let spec = NetworkSpec::micro(16, 1, 5);
    let mut agent = QAgent::new(&spec, 7);

    // Serve the untrained snapshot as generation 0.
    let store = Arc::new(SnapshotStore::new(agent.quantized_snapshot_shared()));
    let service = Service::spawn(
        Arc::clone(&store),
        ServeConfig {
            max_batch: 1,
            max_delay_us: 0,
            pool: None,
        },
    );

    let obs = Tensor::filled(&[1, 16, 16], 0.5);
    let pre = service.client().decide(0, obs.clone());
    assert_eq!(pre.generation, 0, "pre-training decisions serve gen 0");

    let mut cfg = TrainerConfig::online(192, 7);
    cfg.num_envs = 2;
    cfg.batch_size = 4;
    cfg.target_sync = 2;
    let trainer = Trainer::new(cfg);
    let mut hook = TrackingHook {
        publisher: LearnerPublisher::new(Arc::clone(&store)),
        client: service.client(),
        obs,
        served_generations: Vec::new(),
    };
    let mut fl = fleets(2, 2);
    let log = trainer.run_parallel_hooked(&mut agent, &mut fl, &mut hook);
    assert!(!log.curve.is_empty());

    // The learner synced several times, each sync published a new
    // generation, and the served generation advanced monotonically —
    // the fleet never fell behind the newest snapshot.
    assert!(
        hook.served_generations.len() >= 3,
        "expected several target syncs, got {:?}",
        hook.served_generations
    );
    assert!(
        hook.served_generations.windows(2).all(|w| w[0] < w[1]),
        "served generations must strictly advance: {:?}",
        hook.served_generations
    );
    assert_eq!(
        *hook.served_generations.last().expect("non-empty"),
        store.generation(),
        "training ended with the newest generation live"
    );

    drop(hook);
    let stats = service.shutdown();
    // 1 pre-training decision plus one per target sync.
    assert!(stats.requests as usize >= 4);
}

/// The hook only reads the agent, so a hooked run's training trajectory
/// is bit-identical to the unhooked run — publishing can never perturb
/// learning.
#[test]
fn publishing_does_not_perturb_training() {
    let spec = NetworkSpec::micro(16, 1, 5);
    let mut cfg = TrainerConfig::online(96, 11);
    cfg.num_envs = 2;
    cfg.batch_size = 4;
    cfg.target_sync = 4;
    let trainer = Trainer::new(cfg);

    let mut plain_agent = QAgent::new(&spec, 11);
    let plain = trainer.run_parallel(&mut plain_agent, &mut fleets(2, 2));

    let mut hooked_agent = QAgent::new(&spec, 11);
    let store = Arc::new(SnapshotStore::new(hooked_agent.quantized_snapshot_shared()));
    let mut publisher = LearnerPublisher::new(Arc::clone(&store));
    let hooked = trainer.run_parallel_hooked(&mut hooked_agent, &mut fleets(2, 2), &mut publisher);

    assert!(store.generation() > 0, "publishes happened");
    assert_eq!(plain.final_reward.to_bits(), hooked.final_reward.to_bits());
    let curve = |l: &mramrl_rl::TrainLog| {
        l.curve
            .iter()
            .map(|p| {
                (
                    p.iter,
                    p.cumulative_reward.to_bits(),
                    p.avg_return.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(curve(&plain), curve(&hooked));
    assert_eq!(
        plain_agent.net().save_weights(),
        hooked_agent.net().save_weights(),
        "hooked and unhooked runs must end with identical weights"
    );
}
