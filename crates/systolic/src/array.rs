//! Array-level specification.

use crate::pe::PeSpec;

/// The systolic array: geometry, PE spec, clock and buffer port.
///
/// # Examples
///
/// ```
/// use mramrl_systolic::ArraySpec;
///
/// let a = ArraySpec::date19();
/// assert_eq!(a.total_pes(), 1024);
/// assert_eq!(a.peak_macs_per_cycle(), 8192);
/// // 8192 MACs/cycle × 2 ops × 1 GHz = 16.4 TOPS peak compute.
/// assert!((a.peak_tops() - 16.384).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArraySpec {
    /// PE rows (32 in the paper).
    pub rows: u32,
    /// PE columns (32 in the paper).
    pub cols: u32,
    /// Per-PE parameters.
    pub pe: PeSpec,
    /// Clock in GHz (1.0 in the paper).
    pub clock_ghz: f64,
    /// Global-buffer broadcast port width in bits (4096 = 32 × 128).
    pub buffer_port_bits: u32,
}

impl ArraySpec {
    /// The paper's 32×32 array at 1 GHz.
    pub const fn date19() -> Self {
        Self {
            rows: 32,
            cols: 32,
            pe: PeSpec::date19(),
            clock_ghz: 1.0,
            buffer_port_bits: 4096,
        }
    }

    /// Total PEs.
    pub const fn total_pes(&self) -> u32 {
        self.rows * self.cols
    }

    /// Peak MAC throughput per cycle (all PEs, all MAC units).
    pub const fn peak_macs_per_cycle(&self) -> u32 {
        self.total_pes() * self.pe.macs
    }

    /// Peak compute in TOPS (1 MAC = 2 ops).
    pub fn peak_tops(&self) -> f64 {
        f64::from(self.peak_macs_per_cycle()) * 2.0 * self.clock_ghz / 1000.0
    }

    /// Cycle period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Words per cycle entering the array over one inter-PE ingest link.
    pub const fn ingest_words_per_cycle(&self) -> u32 {
        self.pe.link_words_per_cycle()
    }
}

impl Default for ArraySpec {
    fn default() -> Self {
        Self::date19()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date19_geometry() {
        let a = ArraySpec::date19();
        assert_eq!(a.rows, 32);
        assert_eq!(a.cols, 32);
        assert_eq!(a.total_pes(), 1024);
        assert_eq!(a.cycle_ns(), 1.0);
    }

    #[test]
    fn ingest_rate_is_8_words() {
        // The 128-bit link moves 8 × 16-bit weights per cycle — the number
        // that the FC-forward latency model hangs on.
        assert_eq!(ArraySpec::date19().ingest_words_per_cycle(), 8);
    }

    #[test]
    fn peak_tops_value() {
        assert!((ArraySpec::date19().peak_tops() - 16.384).abs() < 1e-12);
    }
}
