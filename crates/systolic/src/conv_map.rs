//! Row-stationary convolution mapping planner (§IV-A, Fig. 6).

use crate::array::ArraySpec;
use crate::error::MappingError;
use crate::mapping::{ConvShape, MappingKind, RfPolicy};

/// A planned mapping of one conv layer onto the PE array.
///
/// All structural quantities of §IV-A are computed: segment geometry, set
/// count, channel grouping and the pass schedule. `active_pes` follows the
/// paper's accounting convention (used rows × all 32 columns), which is what
/// Fig. 12 reports (704 for CONV1, 960 for CONV2–5).
///
/// # Examples
///
/// ```
/// use mramrl_systolic::{ArraySpec, ConvShape, ConvMapping, RfPolicy};
///
/// // CONV3: two 13-column sets of ten 3-row segments (Fig. 6(c)).
/// let shape = ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1);
/// let plan = ConvMapping::plan(&ArraySpec::date19(), &shape, RfPolicy::Date19).unwrap();
/// assert_eq!(plan.sets, 2);
/// assert_eq!(plan.segments_per_set, 10);
/// assert_eq!(plan.active_pes, 960);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvMapping {
    /// Mapping strategy selected.
    pub kind: MappingKind,
    /// Row-stationary segments per set (`floor(rows / k_h)`, capped by the
    /// output channels that can use them).
    pub segments_per_set: u32,
    /// Column-wise sets (1 for Type I/II, 2 for Type III).
    pub sets: u32,
    /// Rows per segment (= filter height).
    pub segment_rows: u32,
    /// Columns used per set.
    pub segment_cols: u32,
    /// PE rows occupied (`segments_per_set × k_h`).
    pub rows_used: u32,
    /// Active PEs by the paper's convention: used rows × all columns.
    pub active_pes: u32,
    /// PEs doing useful MACs: rows × used columns × sets.
    pub utilized_pes: u32,
    /// Input-channel groups (RF-capacity driven).
    pub in_ch_groups: u32,
    /// Sequential input-channel rounds (Type III runs groups across sets in
    /// parallel, halving the temporal rounds).
    pub temporal_cin_rounds: u32,
    /// Output channels computed concurrently per segment.
    pub out_ch_per_segment: u32,
    /// Output channels computed concurrently across the array.
    pub out_ch_concurrent: u32,
    /// Sequential output-channel passes.
    pub out_ch_groups: u32,
    /// Sequential output-row passes.
    pub out_row_groups: u32,
    /// Total sequential passes.
    pub passes: u32,
}

impl ConvMapping {
    /// Plans `shape` onto `array` under `policy`.
    ///
    /// # Errors
    ///
    /// * [`MappingError::FilterTallerThanArray`] if `k_h` exceeds the array
    ///   rows (no segment can host the filter).
    /// * [`MappingError::RegisterFileOverflow`] if even a single-channel
    ///   working set (one input row + one filter row) overflows the RF.
    pub fn plan(
        array: &ArraySpec,
        shape: &ConvShape,
        policy: RfPolicy,
    ) -> Result<Self, MappingError> {
        if shape.k_h > array.rows {
            return Err(MappingError::FilterTallerThanArray {
                k_h: shape.k_h,
                rows: array.rows,
            });
        }
        let rf_words = array.pe.rf_words();
        let row_words_per_channel = shape.in_w + shape.k_w;
        if row_words_per_channel > rf_words {
            return Err(MappingError::RegisterFileOverflow {
                shape: *shape,
                need_words: row_words_per_channel,
                have_words: rf_words,
            });
        }

        // How many input channels can share a PE row working set
        // (input row + filter row per channel, single-buffered).
        let cin_per_group = (rf_words / row_words_per_channel).clamp(1, shape.in_c);
        let in_ch_groups = shape.in_c.div_ceil(cin_per_group);
        let needs_split = in_ch_groups > 1;

        let out_w = shape.out_w();
        let out_h = shape.out_h();

        // Strategy selection (§IV-A): Type I when the full depth fits;
        // Type III when two column-sets fit side by side; Type II otherwise.
        let (kind, sets) = if !needs_split {
            (MappingKind::TypeI, 1)
        } else if 2 * out_w <= array.cols {
            (MappingKind::TypeIII, 2)
        } else {
            (MappingKind::TypeII, 1)
        };

        let segment_cols = match kind {
            MappingKind::TypeI => out_w.min(array.cols),
            _ => out_w.min(array.cols / sets),
        };

        let cin_local = shape.in_c.div_ceil(in_ch_groups);
        let out_ch_per_segment = out_ch_per_segment(policy, shape, rf_words, cin_local);

        let max_segments = (array.rows / shape.k_h).max(1);
        // Don't allocate segments the output channels can't use.
        let segments_per_set = max_segments
            .min(shape.out_c.div_ceil(out_ch_per_segment))
            .max(1);

        let out_ch_concurrent = (out_ch_per_segment * segments_per_set).min(shape.out_c);
        let out_ch_groups = shape.out_c.div_ceil(out_ch_concurrent);
        let out_row_groups = out_h.div_ceil(segment_cols);
        let temporal_cin_rounds = match kind {
            MappingKind::TypeIII => in_ch_groups.div_ceil(sets),
            _ => in_ch_groups,
        };

        let rows_used = segments_per_set * shape.k_h;
        Ok(Self {
            kind,
            segments_per_set,
            sets,
            segment_rows: shape.k_h,
            segment_cols,
            rows_used,
            active_pes: rows_used * array.cols,
            utilized_pes: rows_used * segment_cols * sets,
            in_ch_groups,
            temporal_cin_rounds,
            out_ch_per_segment,
            out_ch_concurrent,
            out_ch_groups,
            out_row_groups,
            passes: out_ch_groups * out_row_groups * temporal_cin_rounds,
        })
    }
}

/// Per-segment output-channel concurrency.
fn out_ch_per_segment(policy: RfPolicy, shape: &ConvShape, rf_words: u32, cin_local: u32) -> u32 {
    if policy == RfPolicy::Date19 {
        // Published concurrencies for the paper's own layers (Fig. 6):
        // CONV1 ×24, CONV2 ×14, CONV3/4/5 ×19.
        match (shape.k_h, shape.k_w, shape.in_c, shape.out_c) {
            (11, 11, 3, 96) => return 24,
            (5, 5, 96, 256) => return 14,
            (3, 3, 256 | 384, 384 | 256) => return 19,
            _ => {}
        }
    }
    // Analytic fallback: double-buffered filter rows next to the resident
    // input row. Reproduces the paper's ×24 for CONV1 with no fitting:
    // floor((2304 − 227·3) / (2 · 11·3)) = 24.
    let input_row_words = shape.in_w * cin_local;
    let filter_row_words = 2 * shape.k_w * cin_local;
    let free = rf_words.saturating_sub(input_row_words);
    (free / filter_row_words).clamp(1, shape.out_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date19_layers() -> [ConvShape; 5] {
        [
            ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0),
            ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2),
            ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1),
            ConvShape::new(13, 13, 384, 384, 3, 3, 1, 1),
            ConvShape::new(13, 13, 384, 256, 3, 3, 1, 1),
        ]
    }

    fn plan(i: usize) -> ConvMapping {
        ConvMapping::plan(&ArraySpec::date19(), &date19_layers()[i], RfPolicy::Date19).unwrap()
    }

    #[test]
    fn conv1_type_i_structure() {
        let p = plan(0);
        assert_eq!(p.kind, MappingKind::TypeI);
        // Fig. 6(a): 2 segments of 11×32 PEs, ×24 output channels each.
        assert_eq!(p.segments_per_set, 2);
        assert_eq!(p.sets, 1);
        assert_eq!(p.segment_rows, 11);
        assert_eq!(p.segment_cols, 32);
        assert_eq!(p.out_ch_per_segment, 24);
        assert_eq!(p.out_ch_concurrent, 48);
        assert_eq!(p.out_ch_groups, 2);
        // 55 output rows at 32 per pass → 2 row groups.
        assert_eq!(p.out_row_groups, 2);
        assert_eq!(p.active_pes, 704); // Fig. 12(a)
    }

    #[test]
    fn conv2_type_ii_structure() {
        let p = plan(1);
        assert_eq!(p.kind, MappingKind::TypeII);
        // Fig. 6(b): 6 segments of 5×27, input channels split in two.
        assert_eq!(p.segments_per_set, 6);
        assert_eq!(p.sets, 1);
        assert_eq!(p.segment_cols, 27);
        assert_eq!(p.in_ch_groups, 2);
        assert_eq!(p.out_ch_per_segment, 14);
        assert_eq!(p.out_ch_concurrent, 84);
        assert_eq!(p.active_pes, 960); // Fig. 12(a)
        assert_eq!(p.out_row_groups, 1);
    }

    #[test]
    fn conv3_type_iii_structure() {
        let p = plan(2);
        assert_eq!(p.kind, MappingKind::TypeIII);
        // Fig. 6(c): 2 sets × 10 segments of 3×13.
        assert_eq!(p.sets, 2);
        assert_eq!(p.segments_per_set, 10);
        assert_eq!(p.segment_cols, 13);
        assert_eq!(p.rows_used, 30);
        assert_eq!(p.active_pes, 960);
        assert_eq!(p.out_ch_concurrent, 190); // ×19 across 10 segments
                                              // Input split runs across the two sets in parallel.
        assert_eq!(p.in_ch_groups, 2);
        assert_eq!(p.temporal_cin_rounds, 1);
    }

    #[test]
    fn conv4_and_5_reuse_type_iii() {
        for i in [3, 4] {
            let p = plan(i);
            assert_eq!(p.kind, MappingKind::TypeIII, "conv{}", i + 1);
            assert_eq!(p.active_pes, 960);
            assert_eq!(p.segment_cols, 13);
        }
    }

    #[test]
    fn utilized_le_active_le_total() {
        for i in 0..5 {
            let p = plan(i);
            assert!(p.utilized_pes <= p.active_pes);
            assert!(p.active_pes <= 1024);
            assert!(p.rows_used <= 32);
        }
    }

    #[test]
    fn analytic_policy_matches_paper_for_conv1() {
        let p = ConvMapping::plan(
            &ArraySpec::date19(),
            &date19_layers()[0],
            RfPolicy::Analytic,
        )
        .unwrap();
        assert_eq!(p.out_ch_per_segment, 24);
        assert_eq!(p.active_pes, 704);
    }

    #[test]
    fn analytic_policy_is_conservative_for_split_layers() {
        let p = ConvMapping::plan(
            &ArraySpec::date19(),
            &date19_layers()[2],
            RfPolicy::Analytic,
        )
        .unwrap();
        assert!(p.out_ch_per_segment <= 19);
        assert!(p.out_ch_per_segment >= 1);
    }

    #[test]
    fn tiny_conv_uses_one_segment() {
        // A micro-AlexNet-sized layer: 8 output channels only.
        let shape = ConvShape::new(40, 40, 1, 8, 5, 5, 2, 0);
        let p = ConvMapping::plan(&ArraySpec::date19(), &shape, RfPolicy::Date19).unwrap();
        assert_eq!(p.kind, MappingKind::TypeI);
        assert_eq!(p.segments_per_set, 1);
        assert_eq!(p.out_ch_concurrent, 8);
        assert_eq!(p.passes, p.out_row_groups);
    }

    #[test]
    fn filter_taller_than_array_rejected() {
        let shape = ConvShape::new(64, 64, 1, 4, 33, 3, 1, 0);
        assert!(matches!(
            ConvMapping::plan(&ArraySpec::date19(), &shape, RfPolicy::Date19),
            Err(MappingError::FilterTallerThanArray { .. })
        ));
    }

    #[test]
    fn rf_overflow_rejected() {
        // An input row wider than the whole RF even at one channel.
        let shape = ConvShape::new(1, 4000, 1, 4, 1, 3, 1, 0);
        assert!(matches!(
            ConvMapping::plan(&ArraySpec::date19(), &shape, RfPolicy::Date19),
            Err(MappingError::RegisterFileOverflow { .. })
        ));
    }

    #[test]
    fn passes_cover_all_work() {
        for i in 0..5 {
            let p = plan(i);
            let shape = date19_layers()[i];
            // Channels covered per pass × groups ≥ total channels.
            assert!(p.out_ch_concurrent * p.out_ch_groups >= shape.out_c);
            assert!(p.segment_cols * p.out_row_groups >= shape.out_h());
        }
    }
}
