//! Clock-domain conversions.

/// Converts cycle counts to wall-clock time at a given clock.
///
/// # Examples
///
/// ```
/// use mramrl_systolic::CycleModel;
///
/// let clk = CycleModel::new(1.0); // 1 GHz
/// assert_eq!(clk.ns(1000), 1000.0);
/// assert_eq!(clk.ms(1_000_000), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    clock_ghz: f64,
}

impl CycleModel {
    /// Creates a model at `clock_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not positive.
    pub fn new(clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock must be positive");
        Self { clock_ghz }
    }

    /// The paper's 1 GHz clock.
    pub fn date19() -> Self {
        Self::new(1.0)
    }

    /// Clock frequency in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Cycles → nanoseconds.
    pub fn ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_ghz
    }

    /// Cycles → milliseconds.
    pub fn ms(&self, cycles: u64) -> f64 {
        self.ns(cycles) * 1e-6
    }

    /// Nanoseconds → cycles (rounded up).
    pub fn cycles_for_ns(&self, ns: f64) -> u64 {
        (ns * self.clock_ghz).ceil() as u64
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        Self::date19()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_at_1ghz() {
        let c = CycleModel::date19();
        assert_eq!(c.ns(500), 500.0);
        assert_eq!(c.ms(2_500_000), 2.5);
        assert_eq!(c.cycles_for_ns(10.5), 11);
    }

    #[test]
    fn conversions_at_2ghz() {
        let c = CycleModel::new(2.0);
        assert_eq!(c.ns(1000), 500.0);
        assert_eq!(c.cycles_for_ns(500.0), 1000);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn zero_clock_panics() {
        let _ = CycleModel::new(0.0);
    }
}
