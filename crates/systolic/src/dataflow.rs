//! Ideal-dataflow cycle roofline for convolution passes.

use crate::array::ArraySpec;
use crate::conv_map::ConvMapping;
use crate::mapping::ConvShape;

/// Roofline estimate for one conv-layer forward traversal.
///
/// Two bounds are computed and the maximum taken:
///
/// * **compute**: `MACs / (utilized_PEs × 8 MACs)` — every MAC unit of
///   every usefully-mapped PE busy each cycle;
/// * **ingest**: all words that must cross the 8-word/cycle array ingest
///   path — weights once per output-row group, inputs rebroadcast per
///   output-channel pass, partial sums written back once per channel round.
///
/// This is deliberately an *optimistic* bound (real row-stationary
/// schedules serialise more); the post-synthesis gap is absorbed by the
/// per-layer calibration in `mramrl-accel`, and this module exposes the
/// [`FlowEstimate::utilization`] that motivates it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEstimate {
    /// Compute-bound cycles.
    pub compute_cycles: u64,
    /// Ingest-bound cycles.
    pub ingest_cycles: u64,
    /// Pipeline fill/drain cycles across all passes.
    pub fill_cycles: u64,
    /// Roofline total.
    pub total_cycles: u64,
    /// MAC-utilization of the roofline (compute / total, in 0..=1).
    pub utilization: f64,
}

/// Computes roofline estimates from a mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvDataflow<'a> {
    array: &'a ArraySpec,
}

impl<'a> ConvDataflow<'a> {
    /// Creates an estimator over `array`.
    pub fn new(array: &'a ArraySpec) -> Self {
        Self { array }
    }

    /// Roofline for one forward traversal of `shape` under `mapping`.
    pub fn forward(&self, shape: &ConvShape, mapping: &ConvMapping) -> FlowEstimate {
        let macs = shape.macs();
        let peak = u64::from(mapping.utilized_pes) * u64::from(self.array.pe.macs);
        let compute_cycles = macs.div_ceil(peak.max(1));

        let ingest_rate = u64::from(self.array.ingest_words_per_cycle());
        let weight_words = shape.weights() * u64::from(mapping.out_row_groups);
        let input_words = shape.input_elems() * u64::from(mapping.out_ch_groups);
        let psum_words = shape.output_elems() * u64::from(mapping.temporal_cin_rounds);
        let ingest_cycles = (weight_words + input_words + psum_words).div_ceil(ingest_rate);

        // Fill/drain: load the segment rows and drain the columns per pass.
        let fill_cycles =
            u64::from(mapping.passes) * u64::from(mapping.rows_used + mapping.segment_cols);

        let total_cycles = compute_cycles.max(ingest_cycles) + fill_cycles;
        FlowEstimate {
            compute_cycles,
            ingest_cycles,
            fill_cycles,
            total_cycles,
            utilization: compute_cycles as f64 / total_cycles.max(1) as f64,
        }
    }

    /// Latency in milliseconds for an estimate at the array clock.
    pub fn latency_ms(&self, est: &FlowEstimate) -> f64 {
        est.total_cycles as f64 / self.array.clock_ghz * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RfPolicy;

    fn estimate(shape: ConvShape) -> (FlowEstimate, ConvMapping) {
        let array = ArraySpec::date19();
        let mapping = ConvMapping::plan(&array, &shape, RfPolicy::Date19).unwrap();
        (ConvDataflow::new(&array).forward(&shape, &mapping), mapping)
    }

    #[test]
    fn conv1_is_ingest_bound_in_the_roofline() {
        let (est, _) = estimate(ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0));
        assert!(est.ingest_cycles > est.compute_cycles);
        assert!(est.total_cycles > 0);
        assert!(est.utilization > 0.0 && est.utilization <= 1.0);
    }

    #[test]
    fn conv2_roofline_below_paper_value() {
        // The roofline must stay below (be optimistic versus) the paper's
        // post-synthesis 1.087 ms — the calibration factor is ≥ 1.
        let array = ArraySpec::date19();
        let shape = ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2);
        let (est, _) = estimate(shape);
        let ms = ConvDataflow::new(&array).latency_ms(&est);
        assert!(ms < 1.087, "{ms}");
    }

    #[test]
    fn all_date19_rooflines_below_fig12a() {
        let paper_ms = [0.245, 1.087, 0.804, 1.28, 1.116];
        let shapes = [
            ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0),
            ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2),
            ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1),
            ConvShape::new(13, 13, 384, 384, 3, 3, 1, 1),
            ConvShape::new(13, 13, 384, 256, 3, 3, 1, 1),
        ];
        let array = ArraySpec::date19();
        for (shape, paper) in shapes.iter().zip(paper_ms) {
            let (est, _) = estimate(*shape);
            let ms = ConvDataflow::new(&array).latency_ms(&est);
            assert!(ms < paper, "{shape:?}: roofline {ms} vs paper {paper}");
        }
    }

    #[test]
    fn more_channels_cost_more() {
        let small = estimate(ConvShape::new(13, 13, 128, 128, 3, 3, 1, 1)).0;
        let big = estimate(ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1)).0;
        assert!(big.total_cycles > small.total_cycles);
    }

    #[test]
    fn fill_cycles_scale_with_passes() {
        let (est, mapping) = estimate(ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2));
        assert_eq!(
            est.fill_cycles,
            u64::from(mapping.passes) * u64::from(mapping.rows_used + mapping.segment_cols)
        );
    }
}
