//! Mapping errors.

use core::fmt;

use crate::mapping::ConvShape;

/// Errors produced while planning a layer onto the PE array.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The filter is taller than the PE array — no row-stationary segment
    /// can host it.
    FilterTallerThanArray {
        /// Filter height.
        k_h: u32,
        /// Array rows.
        rows: u32,
    },
    /// Even a single filter row of a single output channel with the minimum
    /// channel group exceeds the register file.
    RegisterFileOverflow {
        /// The offending shape.
        shape: ConvShape,
        /// Words needed for the minimal working set.
        need_words: u32,
        /// Words available.
        have_words: u32,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::FilterTallerThanArray { k_h, rows } => {
                write!(f, "filter height {k_h} exceeds the {rows}-row PE array")
            }
            MappingError::RegisterFileOverflow {
                shape,
                need_words,
                have_words,
            } => write!(
                f,
                "register file overflow mapping {shape:?}: need {need_words} words, have {have_words}"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MappingError::FilterTallerThanArray { k_h: 40, rows: 32 };
        assert!(e.to_string().contains("40"));
        let e = MappingError::RegisterFileOverflow {
            shape: ConvShape::new(8, 8, 4096, 8, 3, 3, 1, 1),
            need_words: 9999,
            have_words: 2304,
        };
        assert!(e.to_string().contains("overflow"));
    }
}
