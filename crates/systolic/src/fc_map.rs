//! Fully-connected layer mapping (§IV-B forward, §V-A backward).

use crate::array::ArraySpec;

/// Direction of the vector-matrix product on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcDirection {
    /// Forward: row-wise vector propagation, vertical pSUM accumulation
    /// (Fig. 7).
    Forward,
    /// Backward: column-wise vector propagation, row-wise pSUM
    /// accumulation — the vector-*transposed*-matrix product of Fig. 8,
    /// computed without physically transposing the weight tiles.
    /// (Software twin: `mramrl_nn`'s `matmul_at_b` backends, which also
    /// never materialise the transpose — see `docs/gemm_backends.md`.)
    Transposed,
}

/// A planned FC-layer pass over the array.
///
/// FC layers are **weight-ingest bound**: the weight matrix streams into
/// the array through the 128-bit inter-PE links at 8 × 16-bit words per
/// cycle, while the (tiny) activation vector is broadcast. The cycle count
/// is therefore `ceil(weights / 8)` plus a pipeline fill per 32×32 tile.
/// With a 16-cycle fill this lands within ~1 % of the paper's FC1/FC2
/// forward latencies with no further fitting (see `mramrl-accel`).
///
/// # Examples
///
/// ```
/// use mramrl_systolic::{ArraySpec, FcMapping};
///
/// // FC1: 9216 → 4096.
/// let plan = FcMapping::plan(&ArraySpec::date19(), 9216, 4096);
/// assert_eq!(plan.active_pes, 1024);
/// let ms = plan.total_cycles() as f64 * 1e-6; // 1 GHz → cycles = ns
/// assert!((ms - 5.365).abs() < 0.1, "{ms}"); // Fig. 12(a): 5.365 ms
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcMapping {
    /// Input features.
    pub in_features: u32,
    /// Output features.
    pub out_features: u32,
    /// Direction of the product.
    pub direction: FcDirection,
    /// 32×32 weight tiles required.
    pub tiles: u64,
    /// Active PEs (paper convention: `min(rows,in) × min(cols,out)`; 160
    /// for FC5, 1024 for the rest — Fig. 12).
    pub active_pes: u32,
    /// Weight words streamed (weights + biases).
    pub weight_words: u64,
    /// Cycles spent streaming weights at 8 words/cycle.
    pub stream_cycles: u64,
    /// Pipeline fill cycles (16 per tile).
    pub fill_cycles: u64,
}

/// Pipeline fill/drain cycles charged per 32×32 tile.
///
/// Chosen once so the weight-stream model reproduces Fig. 12(a)'s FC1
/// (5.365 ms) and FC2 (1.189 ms) forward latencies within ~1 %; the same
/// constant is then used for every FC layer and both directions.
pub const TILE_FILL_CYCLES: u64 = 16;

impl FcMapping {
    /// Plans a forward vector-matrix product.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn plan(array: &ArraySpec, in_features: u32, out_features: u32) -> Self {
        Self::plan_directed(array, in_features, out_features, FcDirection::Forward)
    }

    /// Plans a transposed (backward) product.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn plan_transposed(array: &ArraySpec, in_features: u32, out_features: u32) -> Self {
        Self::plan_directed(array, in_features, out_features, FcDirection::Transposed)
    }

    fn plan_directed(
        array: &ArraySpec,
        in_features: u32,
        out_features: u32,
        direction: FcDirection,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "fc dimensions must be positive"
        );
        let row_tiles = u64::from(in_features.div_ceil(array.rows));
        let col_tiles = u64::from(out_features.div_ceil(array.cols));
        let tiles = row_tiles * col_tiles;
        let weight_words =
            u64::from(in_features) * u64::from(out_features) + u64::from(out_features);
        let ingest = u64::from(array.ingest_words_per_cycle());
        let stream_cycles = weight_words.div_ceil(ingest);
        let active_pes = in_features.min(array.rows) * out_features.min(array.cols);
        Self {
            in_features,
            out_features,
            direction,
            tiles,
            active_pes,
            weight_words,
            stream_cycles,
            fill_cycles: tiles * TILE_FILL_CYCLES,
        }
    }

    /// Total cycles for the pass.
    pub fn total_cycles(&self) -> u64 {
        self.stream_cycles + self.fill_cycles
    }

    /// Latency in milliseconds at `clock_ghz`.
    pub fn latency_ms(&self, clock_ghz: f64) -> f64 {
        self.total_cycles() as f64 / clock_ghz * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ArraySpec = ArraySpec::date19();

    #[test]
    fn fc1_latency_matches_fig12a() {
        let p = FcMapping::plan(&A, 9216, 4096);
        assert_eq!(p.weight_words, 37_752_832); // Fig. 3(a) exactly
        assert_eq!(p.tiles, 288 * 128);
        let ms = p.latency_ms(1.0);
        // Paper: 5.365 ms. Model: 4.719 (stream) + 0.590 (fill) = 5.309 ms.
        assert!((ms - 5.365).abs() / 5.365 < 0.02, "{ms}");
    }

    #[test]
    fn fc2_latency_matches_fig12a() {
        let p = FcMapping::plan(&A, 4096, 2048);
        assert_eq!(p.weight_words, 8_390_656);
        let ms = p.latency_ms(1.0);
        // Paper: 1.189 ms. Model: 1.049 + 0.131 = 1.180 ms.
        assert!((ms - 1.189).abs() / 1.189 < 0.02, "{ms}");
    }

    #[test]
    fn fc3_fc4_within_six_percent() {
        for (inf, outf, paper_ms) in [(2048u32, 2048u32, 0.562), (2048, 1024, 0.280)] {
            let ms = FcMapping::plan(&A, inf, outf).latency_ms(1.0);
            assert!(
                (ms - paper_ms).abs() / paper_ms < 0.06,
                "{inf}x{outf}: {ms}"
            );
        }
    }

    #[test]
    fn fc5_active_pes_are_160() {
        // Fig. 12: FC5 (1024 → 5) activates 5 columns × 32 rows.
        let p = FcMapping::plan(&A, 1024, 5);
        assert_eq!(p.active_pes, 160);
    }

    #[test]
    fn big_fc_layers_use_full_array() {
        for (i, o) in [(9216u32, 4096u32), (4096, 2048), (2048, 2048), (2048, 1024)] {
            assert_eq!(FcMapping::plan(&A, i, o).active_pes, 1024);
        }
    }

    #[test]
    fn transposed_costs_match_forward() {
        // The O'Leary systolic transpose reuses the same tiles and stream:
        // backward passes cost the same per traversal as forward.
        let f = FcMapping::plan(&A, 2048, 1024);
        let t = FcMapping::plan_transposed(&A, 2048, 1024);
        assert_eq!(f.total_cycles(), t.total_cycles());
        assert_eq!(t.direction, FcDirection::Transposed);
    }

    #[test]
    fn small_layer_tiles() {
        let p = FcMapping::plan(&A, 5, 5);
        assert_eq!(p.tiles, 1);
        assert_eq!(p.active_pes, 25);
    }

    #[test]
    #[should_panic(expected = "fc dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = FcMapping::plan(&A, 0, 5);
    }
}
