//! Functional (numerics-level) simulation of the FC dataflows.
//!
//! The rest of this crate models *cost*; this module executes the actual
//! arithmetic the array would produce, tile by tile, in the platform's
//! 16-bit fixed-point format:
//!
//! * [`FcArraySim::forward`] — Fig. 7: weights tiled 32×32, the input
//!   vector broadcast row-wise, partial sums accumulated down each column
//!   in a wide (32-bit) accumulator, one re-quantisation at drain time;
//! * [`FcArraySim::transposed`] — Fig. 8: the same stationary tiles, the
//!   vector driven down the columns and partial sums accumulated across
//!   rows — the vector-**transposed**-matrix product used by
//!   backpropagation, computed without ever materialising `Wᵀ`.
//!
//! The tests prove both dataflows numerically equal to the reference
//! matrix products, which validates the mapping logic the cost model
//! charges for.

use mramrl_fixed::{Acc32, Q8_8};

use crate::array::ArraySpec;

/// A functional simulator of one FC layer resident on the PE array.
#[derive(Debug, Clone)]
pub struct FcArraySim {
    rows: usize,
    cols: usize,
    in_f: usize,
    out_f: usize,
    /// Weight tiles in row-major `[out, in]` layout, quantised.
    weights: Vec<Q8_8>,
    bias: Vec<Q8_8>,
}

impl FcArraySim {
    /// Loads a quantised `[out_f × in_f]` weight matrix (row-major) and
    /// bias onto the array.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the dimensions.
    pub fn load(
        array: &ArraySpec,
        in_f: usize,
        out_f: usize,
        weights_f32: &[f32],
        bias_f32: &[f32],
    ) -> Self {
        assert_eq!(weights_f32.len(), in_f * out_f, "weight size");
        assert_eq!(bias_f32.len(), out_f, "bias size");
        Self {
            rows: array.rows as usize,
            cols: array.cols as usize,
            in_f,
            out_f,
            weights: weights_f32.iter().map(|&v| Q8_8::from_f32(v)).collect(),
            bias: bias_f32.iter().map(|&v| Q8_8::from_f32(v)).collect(),
        }
    }

    /// Fig. 7 forward: `y = W·x + b`, executed tile-by-tile with column
    /// pSUM accumulation. Returns dequantised outputs.
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from `in_f`.
    // Indexed loops keep the row/column symmetry with `transposed` visible.
    #[allow(clippy::needless_range_loop)]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_f, "input length");
        let xq: Vec<Q8_8> = x.iter().map(|&v| Q8_8::from_f32(v)).collect();
        // One wide accumulator per output neuron (the drained column sum).
        let mut accs: Vec<Acc32> = self.bias.iter().map(|&b| Acc32::from_q(b)).collect();

        // Walk 32×32 tiles: rows ↔ input slice, cols ↔ output slice.
        for tile_r in (0..self.in_f).step_by(self.rows) {
            let r_end = (tile_r + self.rows).min(self.in_f);
            for tile_c in (0..self.out_f).step_by(self.cols) {
                let c_end = (tile_c + self.cols).min(self.out_f);
                // Within the tile: each PE multiplies its stationary
                // weight by the broadcast vector element; pSUMs flow down
                // the column into the accumulator.
                for out_j in tile_c..c_end {
                    let mut acc = accs[out_j];
                    for in_i in tile_r..r_end {
                        acc = acc.mac(self.weights[out_j * self.in_f + in_i], xq[in_i]);
                    }
                    accs[out_j] = acc;
                }
            }
        }
        accs.iter().map(|a| a.to_q::<8>().to_f32()).collect()
    }

    /// Batched Fig. 7 forward: `n` input vectors (`xs` is `[n × in_f]`
    /// row-major) through the same stationary tiles, returning
    /// `[n × out_f]` dequantised outputs.
    ///
    /// On the array, batching amortises what dominates FC traversal
    /// cost: each 32×32 weight tile is loaded once and every resident
    /// vector streams through it before the next tile is fetched
    /// (vectors broadcast row-wise, one pSUM column per (vector,
    /// output) pair). The *cycle* model stays per-vector —
    /// [`crate::FcMapping`] charges ingest-bound tile loads that
    /// batching does not change per image, only overlaps — but the
    /// *numerics* of the batch are exactly `n` independent accumulator
    /// chains: per (vector, output) the MAC order is still ascending
    /// `in_i` across ascending `tile_r`, so row `i` of the result is
    /// **bit-identical** to [`FcArraySim::forward`] on vector `i`, and
    /// to the `mramrl_nn::qgemm` engine's ascending-`k` contract — the
    /// property that lets the functional model and the batched Q8.8
    /// inference engine be compared in one test
    /// (`tests/quantized_engine.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `xs` length is not a multiple of `in_f`.
    // Indexed loops keep the row/column symmetry with `forward` visible.
    #[allow(clippy::needless_range_loop)]
    pub fn forward_batch(&self, xs: &[f32]) -> Vec<f32> {
        assert_eq!(xs.len() % self.in_f, 0, "input batch length");
        let n = xs.len() / self.in_f;
        let xq: Vec<Q8_8> = xs.iter().map(|&v| Q8_8::from_f32(v)).collect();
        // One wide accumulator per (vector, output neuron).
        let mut accs: Vec<Acc32> = (0..n)
            .flat_map(|_| self.bias.iter().map(|&b| Acc32::from_q(b)))
            .collect();

        for tile_r in (0..self.in_f).step_by(self.rows) {
            let r_end = (tile_r + self.rows).min(self.in_f);
            for tile_c in (0..self.out_f).step_by(self.cols) {
                let c_end = (tile_c + self.cols).min(self.out_f);
                // The tile is stationary; every resident vector streams
                // through it before the next tile load.
                for v in 0..n {
                    let xv = &xq[v * self.in_f..(v + 1) * self.in_f];
                    let av = &mut accs[v * self.out_f..(v + 1) * self.out_f];
                    for out_j in tile_c..c_end {
                        let mut acc = av[out_j];
                        for in_i in tile_r..r_end {
                            acc = acc.mac(self.weights[out_j * self.in_f + in_i], xv[in_i]);
                        }
                        av[out_j] = acc;
                    }
                }
            }
        }
        accs.iter().map(|a| a.to_q::<8>().to_f32()).collect()
    }

    /// Fig. 8 transposed product: `g_in = Wᵀ·g_out`, with the vector
    /// driven down columns and pSUMs accumulated row-wise — no transpose
    /// of the stationary tiles. Returns dequantised input gradients
    /// (bias plays no role in the adjoint).
    ///
    /// # Panics
    ///
    /// Panics if `g` length differs from `out_f`.
    // Indexed loops keep the row/column symmetry with `forward` visible.
    #[allow(clippy::needless_range_loop)]
    pub fn transposed(&self, g: &[f32]) -> Vec<f32> {
        assert_eq!(g.len(), self.out_f, "gradient length");
        let gq: Vec<Q8_8> = g.iter().map(|&v| Q8_8::from_f32(v)).collect();
        let mut accs: Vec<Acc32> = vec![Acc32::zero(); self.in_f];

        for tile_r in (0..self.in_f).step_by(self.rows) {
            let r_end = (tile_r + self.rows).min(self.in_f);
            for tile_c in (0..self.out_f).step_by(self.cols) {
                let c_end = (tile_c + self.cols).min(self.out_f);
                // Same stationary tile; now each PE multiplies by the
                // column-driven gradient element and pSUMs drain across
                // the row.
                for in_i in tile_r..r_end {
                    let mut acc = accs[in_i];
                    for out_j in tile_c..c_end {
                        acc = acc.mac(self.weights[out_j * self.in_f + in_i], gq[out_j]);
                    }
                    accs[in_i] = acc;
                }
            }
        }
        accs.iter().map(|a| a.to_q::<8>().to_f32()).collect()
    }

    /// Number of 32×32 tiles resident.
    pub fn tiles(&self) -> usize {
        self.in_f.div_ceil(self.rows) * self.out_f.div_ceil(self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_forward(w: &[f32], b: &[f32], x: &[f32], in_f: usize, out_f: usize) -> Vec<f32> {
        (0..out_f)
            .map(|j| {
                // Quantised reference: snap operands to the Q8.8 grid
                // with the shared entry rounding helper.
                let snap = mramrl_fixed::Q8_8::snap_f32;
                let mut acc = snap(b[j]);
                for i in 0..in_f {
                    acc += snap(w[j * in_f + i]) * snap(x[i]);
                }
                acc
            })
            .collect()
    }

    fn test_data(in_f: usize, out_f: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        // Pseudo-random but deterministic small values (exact in Q8.8
        // after snapping, keeping accumulators well inside range).
        let gen = |n: usize, salt: u64| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed ^ salt;
                    ((h % 129) as f32 - 64.0) / 256.0
                })
                .collect()
        };
        (gen(in_f * out_f, 1), gen(out_f, 2), gen(in_f, 3))
    }

    #[test]
    fn forward_matches_reference_across_tile_boundaries() {
        // Sizes straddling 32×32 tile edges: 1 tile, ragged, multi-tile.
        for (in_f, out_f) in [(8usize, 5usize), (32, 32), (33, 31), (100, 70), (64, 5)] {
            let (w, b, x) = test_data(in_f, out_f, 42);
            let sim = FcArraySim::load(&ArraySpec::date19(), in_f, out_f, &w, &b);
            let got = sim.forward(&x);
            let expect = reference_forward(&w, &b, &x, in_f, out_f);
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g - e).abs() < 1.0 / 256.0 + 1e-5,
                    "{in_f}x{out_f}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn transposed_matches_wt_product() {
        let (in_f, out_f) = (50usize, 40usize);
        let (w, b, _) = test_data(in_f, out_f, 7);
        let g: Vec<f32> = (0..out_f).map(|i| ((i % 9) as f32 - 4.0) / 64.0).collect();
        let sim = FcArraySim::load(&ArraySpec::date19(), in_f, out_f, &w, &b);
        let got = sim.transposed(&g);
        let snap = mramrl_fixed::Q8_8::snap_f32;
        for i in 0..in_f {
            let mut expect = 0.0f32;
            for j in 0..out_f {
                expect += snap(w[j * in_f + i]) * snap(g[j]);
            }
            assert!((got[i] - expect).abs() < 1.0 / 256.0 + 1e-5, "i={i}");
        }
    }

    #[test]
    fn forward_then_transposed_is_symmetric_bilinear() {
        // <g, W x> == <Wᵀ g, x> — the adjoint identity the backprop
        // hardware relies on (bias removed by using zero bias).
        let (in_f, out_f) = (37usize, 29usize);
        let (w, _, x) = test_data(in_f, out_f, 3);
        let b = vec![0.0f32; out_f];
        let g: Vec<f32> = (0..out_f).map(|i| ((i % 5) as f32 - 2.0) / 32.0).collect();
        let sim = FcArraySim::load(&ArraySpec::date19(), in_f, out_f, &w, &b);
        let wx = sim.forward(&x);
        let wtg = sim.transposed(&g);
        let lhs: f32 = g.iter().zip(&wx).map(|(a, b)| a * b).sum();
        let rhs: f32 = wtg.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 0.02 * lhs.abs().max(0.1),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn batched_forward_rows_match_per_vector_forward_bitwise() {
        // Batched tile-resident streaming reorders *which* accumulator
        // advances when, but never the MAC order within one — rows must
        // equal per-vector passes exactly, tile boundaries included.
        for (in_f, out_f, n) in [(33usize, 31usize, 3usize), (100, 70, 4), (8, 5, 1)] {
            let (w, b, _) = test_data(in_f, out_f, 11);
            let sim = FcArraySim::load(&ArraySpec::date19(), in_f, out_f, &w, &b);
            let xs: Vec<f32> = (0..n * in_f)
                .map(|i| ((i % 101) as f32 - 50.0) / 256.0)
                .collect();
            let batched = sim.forward_batch(&xs);
            assert_eq!(batched.len(), n * out_f);
            for v in 0..n {
                let single = sim.forward(&xs[v * in_f..(v + 1) * in_f]);
                assert_eq!(
                    single.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    batched[v * out_f..(v + 1) * out_f]
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    "{in_f}x{out_f} vector {v}"
                );
            }
        }
    }

    #[test]
    fn tile_count_matches_cost_model() {
        let sim = FcArraySim::load(
            &ArraySpec::date19(),
            100,
            70,
            &vec![0.0; 7000],
            &vec![0.0; 70],
        );
        // ceil(100/32) × ceil(70/32) = 4 × 3.
        assert_eq!(sim.tiles(), 12);
        let mapping = crate::FcMapping::plan(&ArraySpec::date19(), 100, 70);
        assert_eq!(sim.tiles() as u64, mapping.tiles);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let sim = FcArraySim::load(&ArraySpec::date19(), 4, 2, &[0.0; 8], &[0.0; 2]);
        let _ = sim.forward(&[0.0; 3]);
    }
}
