//! Systolic PE-array model for the `mramrl` platform.
//!
//! Models the paper's 32×32 processing-element array (Fig. 4) and the three
//! row-stationary convolution mapping strategies of §IV:
//!
//! * **Type I** (CONV1): full input depth fits each PE's register file; the
//!   array splits into `floor(32 / filter_height)` segments, each convolving
//!   a different output-channel group over the same input.
//! * **Type II** (CONV2): input channels no longer fit, so they are split
//!   into sequential groups; one set of segments, `out_width` columns used.
//! * **Type III** (CONV3–5): small filters allow two column-wise *sets*,
//!   each processing half of the input channels in parallel with a cross-set
//!   partial-sum merge.
//!
//! Fully-connected layers map as 32×32 weight tiles with row-wise vector
//! propagation (forward, Fig. 7) or column-wise propagation with row-wise
//! accumulation (the transposed product used by backpropagation, Fig. 8 —
//! the O'Leary systolic-transpose trick, so the weight matrix is never
//! physically transposed).
//!
//! The crate computes *structural* quantities — mapping kind, segments,
//! sets, active PEs, pass counts — and an ideal-dataflow cycle roofline.
//! Absolute post-synthesis timing calibration lives in `mramrl-accel`.
//!
//! The *software* twin of these GEMM dataflows is the pluggable backend
//! suite in `mramrl_nn::backend` (naive/blocked/threaded kernels behind
//! `matmul` / `matmul_at_b`; see `docs/gemm_backends.md`): the forward
//! Fig. 7 dataflow corresponds to `matmul`, the transposed Fig. 8
//! dataflow to `matmul_at_b`. Changing software backends never changes
//! any cycle count modelled here — it only changes how fast the
//! simulation itself runs.
//!
//! # Examples
//!
//! ```
//! use mramrl_systolic::{ArraySpec, ConvShape, ConvMapping, RfPolicy};
//!
//! let array = ArraySpec::date19();
//! // CONV1 of the paper's modified AlexNet.
//! let conv1 = ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0);
//! let plan = ConvMapping::plan(&array, &conv1, RfPolicy::Date19).unwrap();
//! assert_eq!(plan.segments_per_set, 2);
//! assert_eq!(plan.active_pes, 704); // Fig. 12(a)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod conv_map;
mod cycles;
mod dataflow;
mod error;
mod fc_map;
pub mod functional;
mod mapping;
mod pe;

pub use array::ArraySpec;
pub use conv_map::ConvMapping;
pub use cycles::CycleModel;
pub use dataflow::{ConvDataflow, FlowEstimate};
pub use error::MappingError;
pub use fc_map::FcMapping;
pub use functional::FcArraySim;
pub use mapping::{ConvShape, MappingKind, RfPolicy};
pub use pe::PeSpec;

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync_public_types() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ArraySpec>();
        assert_send_sync::<crate::ConvMapping>();
        assert_send_sync::<crate::FcMapping>();
        assert_send_sync::<crate::MappingError>();
    }
}
