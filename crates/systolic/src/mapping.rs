//! Shared mapping types: conv shapes, mapping kinds, RF policies.

use core::fmt;

/// A convolution layer's shape, as the mapper sees it.
///
/// # Examples
///
/// ```
/// use mramrl_systolic::ConvShape;
///
/// let conv1 = ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0);
/// assert_eq!(conv1.out_h(), 55);
/// assert_eq!(conv1.macs(), 105_415_200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input height in pixels.
    pub in_h: u32,
    /// Input width in pixels.
    pub in_w: u32,
    /// Input channels.
    pub in_c: u32,
    /// Output channels (filter count).
    pub out_c: u32,
    /// Filter height.
    pub k_h: u32,
    /// Filter width.
    pub k_w: u32,
    /// Stride (same in both dimensions).
    pub stride: u32,
    /// Zero padding (same on all sides).
    pub pad: u32,
}

impl ConvShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, the stride is zero, or the filter
    /// (with padding) exceeds the input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_h: u32,
        in_w: u32,
        in_c: u32,
        out_c: u32,
        k_h: u32,
        k_w: u32,
        stride: u32,
        pad: u32,
    ) -> Self {
        assert!(
            in_h > 0 && in_w > 0 && in_c > 0 && out_c > 0 && k_h > 0 && k_w > 0 && stride > 0,
            "conv dimensions must be positive"
        );
        assert!(
            k_h <= in_h + 2 * pad && k_w <= in_w + 2 * pad,
            "filter exceeds padded input"
        );
        Self {
            in_h,
            in_w,
            in_c,
            out_c,
            k_h,
            k_w,
            stride,
            pad,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> u32 {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> u32 {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Weight count (no biases).
    pub fn weights(&self) -> u64 {
        u64::from(self.k_h) * u64::from(self.k_w) * u64::from(self.in_c) * u64::from(self.out_c)
    }

    /// Multiply-accumulate count for one forward pass.
    pub fn macs(&self) -> u64 {
        u64::from(self.out_h()) * u64::from(self.out_w()) * self.weights()
    }

    /// Input activation element count.
    pub fn input_elems(&self) -> u64 {
        u64::from(self.in_h) * u64::from(self.in_w) * u64::from(self.in_c)
    }

    /// Output activation element count.
    pub fn output_elems(&self) -> u64 {
        u64::from(self.out_h()) * u64::from(self.out_w()) * u64::from(self.out_c)
    }
}

/// Which of the paper's three conv mapping strategies a layer uses (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Full input depth resident per PE (CONV1).
    TypeI,
    /// Input channels split into sequential groups, one set (CONV2).
    TypeII,
    /// Two column-wise sets, input channels split across sets (CONV3–5).
    TypeIII,
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MappingKind::TypeI => "Type I",
            MappingKind::TypeII => "Type II",
            MappingKind::TypeIII => "Type III",
        })
    }
}

/// How per-segment output-channel concurrency is derived from the RF.
///
/// The paper states the concurrency for its own layers (Fig. 6: ×24 for
/// CONV1, ×14 for CONV2, ×19 for CONV3) but does not give a closed-form RF
/// accounting that reproduces all three. [`RfPolicy::Date19`] uses the
/// published numbers for exactly-matching structure on the paper's network;
/// [`RfPolicy::Analytic`] uses a conservative double-buffered-filter model
/// that works for arbitrary layers (e.g. the micro-AlexNet used by the
/// algorithm experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RfPolicy {
    /// Paper-anchored concurrency for the DATE-19 AlexNet layers, analytic
    /// fallback for anything else.
    #[default]
    Date19,
    /// Pure analytic model: `floor((rf_words − input_row) / (2·k_w·c_in))`,
    /// clamped to at least 1.
    Analytic,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_output_shapes() {
        // The five conv layers of the paper's modified AlexNet.
        let c1 = ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0);
        assert_eq!((c1.out_h(), c1.out_w()), (55, 55));
        let c2 = ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2);
        assert_eq!((c2.out_h(), c2.out_w()), (27, 27));
        let c3 = ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1);
        assert_eq!((c3.out_h(), c3.out_w()), (13, 13));
        let c4 = ConvShape::new(13, 13, 384, 384, 3, 3, 1, 1);
        assert_eq!((c4.out_h(), c4.out_w()), (13, 13));
        let c5 = ConvShape::new(13, 13, 384, 256, 3, 3, 1, 1);
        assert_eq!((c5.out_h(), c5.out_w()), (13, 13));
    }

    #[test]
    fn alexnet_macs() {
        let c2 = ConvShape::new(27, 27, 96, 256, 5, 5, 1, 2);
        assert_eq!(c2.macs(), 447_897_600);
        let c3 = ConvShape::new(13, 13, 256, 384, 3, 3, 1, 1);
        assert_eq!(c3.macs(), 149_520_384);
    }

    #[test]
    fn weight_counts_match_fig3a_basis() {
        let c1 = ConvShape::new(227, 227, 3, 96, 11, 11, 4, 0);
        assert_eq!(c1.weights(), 34_848); // +96 biases = 34,944
        let c4 = ConvShape::new(13, 13, 384, 384, 3, 3, 1, 1);
        assert_eq!(c4.weights(), 1_327_104);
    }

    #[test]
    #[should_panic(expected = "filter exceeds padded input")]
    fn oversized_filter_panics() {
        let _ = ConvShape::new(8, 8, 3, 8, 11, 11, 1, 0);
    }

    #[test]
    fn mapping_kind_display() {
        assert_eq!(MappingKind::TypeIII.to_string(), "Type III");
    }
}
