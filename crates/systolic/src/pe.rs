//! Processing-element specification.

/// One processing element of the array (Fig. 4(b)).
///
/// Each PE holds a 4.5 KB register file, 8 multiply-accumulate units for
/// convolution / vector-matrix products, and 8 comparators implementing
/// ReLU and maxpool, with a 128-bit link to its neighbours.
///
/// # Examples
///
/// ```
/// use mramrl_systolic::PeSpec;
///
/// let pe = PeSpec::date19();
/// assert_eq!(pe.rf_words(), 2304); // 4.5 KB of 16-bit words
/// assert_eq!(pe.macs, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeSpec {
    /// Register-file capacity in bytes.
    pub rf_bytes: u32,
    /// MAC units per PE.
    pub macs: u32,
    /// Comparator units per PE (ReLU / maxpool).
    pub comparators: u32,
    /// Width of the link to neighbouring PEs, in bits.
    pub link_bits: u32,
    /// Word size of the datapath in bits (16-bit fixed point).
    pub word_bits: u32,
}

impl PeSpec {
    /// The paper's PE: 4.5 KB RF, 8 MACs, 8 comparators, 128-bit links,
    /// 16-bit fixed-point words.
    pub const fn date19() -> Self {
        Self {
            rf_bytes: 4608,
            macs: 8,
            comparators: 8,
            link_bits: 128,
            word_bits: 16,
        }
    }

    /// Register-file capacity in datapath words.
    pub const fn rf_words(&self) -> u32 {
        self.rf_bytes * 8 / self.word_bits
    }

    /// Words that cross one inter-PE link per cycle (128/16 = 8).
    pub const fn link_words_per_cycle(&self) -> u32 {
        self.link_bits / self.word_bits
    }
}

impl Default for PeSpec {
    fn default() -> Self {
        Self::date19()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date19_values() {
        let pe = PeSpec::date19();
        assert_eq!(pe.rf_bytes, 4608);
        assert_eq!(pe.rf_words(), 2304);
        assert_eq!(pe.link_words_per_cycle(), 8);
        assert_eq!(pe.comparators, 8);
    }

    #[test]
    fn default_is_date19() {
        assert_eq!(PeSpec::default(), PeSpec::date19());
    }
}
