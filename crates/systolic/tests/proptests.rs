//! Property tests for the systolic mapping planner.

use mramrl_systolic::{ArraySpec, ConvDataflow, ConvMapping, ConvShape, FcMapping, RfPolicy};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = ConvShape> {
    (
        8u32..256,  // in_h = in_w (square inputs)
        1u32..=512, // in_c
        1u32..=512, // out_c
        1u32..=11,  // k (square filters)
        1u32..=4,   // stride
        0u32..=2,   // pad
    )
        .prop_filter_map("valid conv", |(hw, in_c, out_c, k, stride, pad)| {
            if k > hw + 2 * pad || hw + k > 2300 {
                None
            } else {
                Some(ConvShape::new(hw, hw, in_c, out_c, k, k, stride, pad))
            }
        })
}

proptest! {
    /// Every plannable conv fits inside the 32×32 array and covers all of
    /// its output channels and rows.
    #[test]
    fn plans_fit_and_cover(shape in arb_shape(), analytic in any::<bool>()) {
        let array = ArraySpec::date19();
        let policy = if analytic { RfPolicy::Analytic } else { RfPolicy::Date19 };
        let Ok(p) = ConvMapping::plan(&array, &shape, policy) else {
            // Rejection is only legal for filters taller than the array or
            // input rows wider than the RF.
            prop_assert!(shape.k_h > 32 || shape.in_w + shape.k_w > 2304);
            return Ok(());
        };
        prop_assert!(p.rows_used <= array.rows);
        prop_assert!(p.segment_cols * p.sets <= array.cols);
        prop_assert!(p.active_pes <= array.total_pes());
        prop_assert!(p.utilized_pes <= p.active_pes);
        prop_assert!(p.out_ch_concurrent * p.out_ch_groups >= shape.out_c);
        prop_assert!(p.segment_cols * p.out_row_groups >= shape.out_h());
        prop_assert!(p.passes >= 1);
        prop_assert_eq!(p.segment_rows, shape.k_h);
    }

    /// The roofline is never better than pure compute at full-array peak,
    /// and utilization stays in (0, 1].
    #[test]
    fn roofline_bounded_by_peak(shape in arb_shape()) {
        let array = ArraySpec::date19();
        let Ok(p) = ConvMapping::plan(&array, &shape, RfPolicy::Date19) else { return Ok(()) };
        let est = ConvDataflow::new(&array).forward(&shape, &p);
        let absolute_peak = shape.macs().div_ceil(u64::from(array.peak_macs_per_cycle()));
        prop_assert!(est.total_cycles >= absolute_peak);
        prop_assert!(est.utilization > 0.0 && est.utilization <= 1.0);
        prop_assert!(est.total_cycles >= est.compute_cycles.max(est.ingest_cycles));
    }

    /// FC mapping invariants: tiles cover the matrix, active PEs respect
    /// the array, streaming cycles equal ceil(weights/8).
    #[test]
    fn fc_mapping_invariants(inf in 1u32..20_000, outf in 1u32..8_192) {
        let array = ArraySpec::date19();
        let p = FcMapping::plan(&array, inf, outf);
        prop_assert!(p.tiles * 1024 >= u64::from(inf) * u64::from(outf));
        prop_assert!(p.active_pes <= 1024);
        let words = u64::from(inf) * u64::from(outf) + u64::from(outf);
        prop_assert_eq!(p.stream_cycles, words.div_ceil(8));
        prop_assert_eq!(p.total_cycles(), p.stream_cycles + p.fill_cycles);
    }

    /// FC latency is monotone in both dimensions.
    #[test]
    fn fc_latency_monotone(inf in 32u32..4096, outf in 32u32..4096, grow in 1u32..512) {
        let array = ArraySpec::date19();
        let base = FcMapping::plan(&array, inf, outf).total_cycles();
        prop_assert!(FcMapping::plan(&array, inf + grow, outf).total_cycles() >= base);
        prop_assert!(FcMapping::plan(&array, inf, outf + grow).total_cycles() >= base);
    }
}
