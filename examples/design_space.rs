//! Design-space exploration: how big an SRAM does each training topology
//! need, and what does each design cost per frame?
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use mramrl::{DesignSweep, Topology};

fn main() {
    let sweep = DesignSweep::date19();
    println!(
        "{:<10} {:<6} {:>10} {:>15} {:>14} {:>12} {:>16}",
        "SRAM [MB]", "topo", "placeable", "NVM write-free", "SRAM used", "fps@4", "mJ/frame"
    );
    for p in sweep.run() {
        println!(
            "{:<10} {:<6} {:>10} {:>15} {:>14} {:>12} {:>16}",
            p.sram_mb,
            p.topology.to_string(),
            p.placeable,
            p.nvm_write_free,
            if p.placeable {
                format!("{:.2}", p.sram_used_mb)
            } else {
                "-".into()
            },
            if p.placeable {
                format!("{:.1}", p.fps_batch4)
            } else {
                "-".into()
            },
            if p.placeable {
                format!("{:.0}", p.energy_per_frame_mj)
            } else {
                "-".into()
            },
        );
    }

    println!("\nWrite-free frontier (the paper's three architectures):");
    for topo in [Topology::L2, Topology::L3, Topology::L4] {
        if let Some(mb) = sweep.min_sram_for(topo) {
            println!("  {topo}: ≥ {mb} MB SRAM");
        }
    }
    println!("  E2E: no SRAM size in the sweep keeps the NVM read-only.");
}
