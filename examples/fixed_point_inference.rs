//! Fixed-point inference: the 16-bit Q8.8 engine the platform deploys
//! with, run the way the silicon runs it — **batched**: a `VecEnv`
//! fleet of drones acting through one `QuantizedNet` snapshot per
//! vec-step (deployment mode), with float-vs-Q8.8 greedy agreement
//! measured on the live frames and the engine's weight bytes
//! cross-checked against the accelerator cost model.
//!
//! ```sh
//! cargo run --release --example fixed_point_inference
//! ```

use mramrl::accel::SystemParams;
use mramrl::env::VecEnv;
use mramrl::nn::quant::{QWorkspace, QuantizedNet};
use mramrl::rl::ActingPrecision;
use mramrl::{EnvKind, NetworkSpec, QAgent, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let px = 16usize;
    let lanes = 4usize;
    let spec = NetworkSpec::micro(px, 1, 5);
    let mut agent = QAgent::new(&spec, 5);

    // Deployment mode: every act below runs the Q8.8 engine, batched.
    agent.set_acting_precision(ActingPrecision::FixedQ8_8);
    let qnet: QuantizedNet = agent.quantized_snapshot().clone();
    println!(
        "Quantised model: {} bytes of 16-bit weights+biases (float would be {} bytes of f32), \
         backend: {}",
        qnet.weight_bytes(),
        qnet.weight_bytes() * 2,
        qnet.backend(),
    );
    for (name, bytes) in qnet.layer_weight_bytes() {
        println!("  {name:>6}: {bytes:>6} B (STT-MRAM-resident, read-only in flight)");
    }

    // The accelerator cost model charges exactly the bytes the engine
    // stores — pinned, not assumed.
    let model = mramrl::accel::PlatformModel::with_spec(
        spec.clone(),
        SystemParams::date19(),
        mramrl::accel::Calibration::ideal(),
    );
    model.verify_engine_bytes(&qnet)?;
    println!("Cost-model byte accounting verified against the engine snapshot.\n");

    // A fleet of lanes stepping together: ONE batched engine pass per
    // vec-step selects all actions (Fig. 4(b) datapath, batch = lanes).
    // Lane i is seeded base + i, matching `VecEnv::new`'s convention.
    let mut venv = VecEnv::from_envs(
        (0..lanes as u64)
            .map(|i| {
                mramrl::DroneEnv::new(EnvKind::IndoorApartment, 3 + i).with_camera(
                    mramrl::env::DepthCamera::new(px, px, 90.0f32.to_radians(), 20.0, 0.02),
                )
            })
            .collect(),
    );
    let mut obs: Vec<Tensor> = venv
        .reset_all()
        .iter()
        .map(|img| Tensor::from_vec(&[1, img.height(), img.width()], img.data().to_vec()))
        .collect();

    let mut fws = mramrl::nn::Workspace::for_spec(&spec);
    let mut qws = QWorkspace::for_net(&qnet);
    // Seed 5 = the agent's seed: same weights as the snapshot's source.
    let float_net = spec.build(5);

    let steps = 12usize;
    let mut agree = 0usize;
    let mut total = 0usize;
    println!(
        "{:>5} {:>28} {:>28} {:>7}",
        "step", "q8.8 actions (per lane)", "f32 actions (per lane)", "match"
    );
    for step in 0..steps {
        // Stack the lanes' frames into one [K, 1, H, W] batch.
        let mut data = Vec::with_capacity(lanes * px * px);
        for o in &obs {
            data.extend_from_slice(o.data());
        }
        let batch = Tensor::from_vec(&[lanes, 1, px, px], data);

        // Deployment act: the agent routes through the Q8.8 engine.
        let aq = agent.greedy_actions(&batch);
        // Float reference on the same frames (fidelity, measured live).
        let qf = float_net.forward_batch(&batch, &mut fws);
        let af: Vec<usize> = (0..lanes)
            .map(|i| mramrl::nn::argmax(qf.sample(i)))
            .collect();
        // And the raw engine, to show the agent adds routing only.
        let q_direct = qnet.q_values_batch(&batch, &mut qws);
        assert_eq!(
            aq,
            (0..lanes)
                .map(|i| mramrl::nn::argmax(q_direct.sample(i)))
                .collect::<Vec<_>>()
        );

        let matches = aq.iter().zip(&af).filter(|(a, b)| a == b).count();
        agree += matches;
        total += lanes;
        println!(
            "{:>5} {:>28} {:>28} {:>4}/{}",
            step,
            format!("{aq:?}"),
            format!("{af:?}"),
            matches,
            lanes
        );

        let actions: Vec<mramrl::env::Action> = aq
            .iter()
            .map(|&a| mramrl::env::Action::from_index(a))
            .collect();
        for (i, s) in venv.step(&actions).iter().enumerate() {
            obs[i] = if s.crashed {
                let img = venv.reset(i);
                Tensor::from_vec(&[1, img.height(), img.width()], img.data().to_vec())
            } else {
                Tensor::from_vec(
                    &[1, s.observation.height(), s.observation.width()],
                    s.observation.data().to_vec(),
                )
            };
        }
    }
    println!(
        "\nGreedy-action agreement over {total} live lane-frames: {agree}/{total} \
         — the fidelity the 16-bit hardware datapath relies on, measured batched."
    );
    Ok(())
}
