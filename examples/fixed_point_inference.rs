//! Fixed-point inference: demonstrates the 16-bit Q8.8 datapath the
//! platform computes with, comparing float and quantised Q-values and
//! their greedy actions on live environment observations.
//!
//! ```sh
//! cargo run --release --example fixed_point_inference
//! ```

use mramrl::nn::quant::QuantizedNet;
use mramrl::{DroneEnv, EnvKind, NetworkSpec, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let px = 16usize;
    let spec = NetworkSpec::micro(px, 1, 5);
    let mut net = spec.build(5);
    let qnet = QuantizedNet::from_network(&spec, &net)?;
    println!(
        "Quantised model: {} bytes of 16-bit weights (float: {} bytes of f32)",
        qnet.weight_bytes(),
        qnet.weight_bytes() * 2
    );

    let cam = mramrl::env::DepthCamera::new(px, px, 90.0f32.to_radians(), 20.0, 0.02);
    let mut env = DroneEnv::new(EnvKind::IndoorApartment, 3).with_camera(cam);
    let mut obs = env.reset();

    let mut agree = 0usize;
    let trials = 30usize;
    println!(
        "\n{:>5} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "step", "q_f32[a]", "q_q8.8[a]", "a_f32", "a_q8.8", "match"
    );
    for step in 0..trials {
        let x = Tensor::from_vec(&[1, px, px], obs.data().to_vec());
        let qf = net.forward(&x);
        let qq = qnet.forward(&x);
        let af = qf.argmax();
        let aq = qq.argmax();
        agree += usize::from(af == aq);
        if step < 10 {
            println!(
                "{:>5} {:>10.4} {:>10.4} {:>8} {:>8} {:>7}",
                step,
                qf.data()[af],
                qq.data()[af],
                af,
                aq,
                af == aq
            );
        }
        let s = env.step(mramrl::env::Action::from_index(af));
        obs = if s.crashed {
            env.reset()
        } else {
            s.observation
        };
    }
    println!(
        "\nGreedy-action agreement over {trials} live frames: {agree}/{trials} \
         — the fidelity the 16-bit hardware datapath relies on."
    );
    Ok(())
}
