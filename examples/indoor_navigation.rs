//! Indoor navigation: the paper's full deployment flow on the apartment
//! environment — meta-training (TL), model download, then online RL with
//! each topology — printing learning curves and the SFD comparison.
//!
//! ```sh
//! cargo run --release --example indoor_navigation            # quick
//! cargo run --release --example indoor_navigation -- --full  # paper scale
//! ```

use mramrl::rl::experiment::normalized_sfd;
use mramrl::{EnvKind, Fig10Experiment, TransferCache};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exp = if full {
        Fig10Experiment::full(7)
    } else {
        Fig10Experiment::quick(7)
    };
    println!(
        "TL on {} ({} iters), then online RL on {} ({} iters per topology)…",
        EnvKind::MetaIndoor,
        exp.tl_iters,
        EnvKind::IndoorApartment,
        exp.online_iters
    );

    let mut cache = TransferCache::new();
    let runs = exp.run_env(&mut cache, EnvKind::IndoorApartment);

    println!(
        "\n{:<5} {:>12} {:>12} {:>10} {:>9}",
        "topo", "reward(start)", "reward(end)", "SFD [m]", "episodes"
    );
    for r in &runs {
        let first = r.log.curve.first().expect("curve");
        let last = r.log.curve.last().expect("curve");
        println!(
            "{:<5} {:>12.3} {:>12.3} {:>10.1} {:>9}",
            r.topology.to_string(),
            first.cumulative_reward,
            last.cumulative_reward,
            r.log.sfd,
            r.log.episodes
        );
    }

    println!("\nNormalized SFD vs E2E (Fig. 11 for this environment):");
    for (topo, norm) in normalized_sfd(&runs, EnvKind::IndoorApartment) {
        println!("  {topo}: {norm:.3}");
    }
    if !full {
        println!("\n(quick mode is noisy — run with --full for paper-scale curves)");
    }
}
