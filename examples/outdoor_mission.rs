//! Outdoor mission planning: Fig. 1's fps/velocity analysis applied to a
//! forest survey — including an ASCII view of the world (the repo's
//! stand-in for Fig. 9's screenshots).
//!
//! ```sh
//! cargo run --release --example outdoor_mission
//! ```

use mramrl::env::ascii_map;
use mramrl::{Calibration, EnvKind, Mission, Platform, PlatformModel, Topology, ENV_CLASSES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = EnvKind::OutdoorForest.build(3);
    println!("== Outdoor forest (seed 3), d_min = {} m ==", world.d_min());
    println!("{}", ascii_map(&world, world.spawn(), 64));

    // Which platform supports a 10 m/s forest survey?
    let class = ENV_CLASSES[3]; // Outdoor 1
    let v = 10.0;
    let need = Mission::required_fps(v, class.d_min);
    println!("Survey at {v} m/s in {} needs {need:.2} fps.", class.name);

    let model = PlatformModel::new(Calibration::date19());
    println!(
        "\n{:<5} {:>12} {:>10} {:>12}",
        "topo", "fps@batch4", "feasible", "max v [m/s]"
    );
    for topo in Topology::ALL {
        let fps = model.max_fps(topo, 4);
        println!(
            "{:<5} {:>12.1} {:>10} {:>12.1}",
            topo.to_string(),
            fps,
            if fps >= need { "yes" } else { "NO" },
            Mission::max_velocity(fps, class.d_min)
        );
    }

    // And indoors, the discriminating case at 5 m/s (Fig. 1(b)):
    let apartment = ENV_CLASSES[0];
    let need_indoor = Mission::required_fps(5.0, apartment.d_min);
    println!(
        "\nIndoor 1 at 5 m/s needs {need_indoor:.2} fps: L4 gives {:.1} (ok), E2E {:.1} ({})",
        model.max_fps(Topology::L4, 4),
        model.max_fps(Topology::E2E, 4),
        if model.max_fps(Topology::E2E, 4) >= need_indoor {
            "ok"
        } else {
            "infeasible"
        },
    );

    let platform = Platform::proposed()?;
    println!(
        "\nProposed L3 platform velocity envelope (batch 4): indoor {:.1} m/s, forest {:.1} m/s",
        Mission::max_velocity(platform.max_fps(4), 0.7),
        Mission::max_velocity(platform.max_fps(4), 3.0),
    );
    Ok(())
}
