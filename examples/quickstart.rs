//! Quickstart: build the paper's platform, check its headline numbers,
//! and fly a short learning mission.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mramrl::{headline, Calibration, DeploymentSim, EnvKind, Mission, Platform, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The hardware story: per-image training cost per topology.
    let h = headline(Calibration::date19());
    println!("== DATE-19 headline (L4 vs E2E) ==");
    println!(
        "  training latency reduction: {:.1}%",
        h.latency_reduction_pct
    );
    println!(
        "  training energy  reduction: {:.1}%",
        h.energy_reduction_pct
    );
    println!(
        "  supported fps at batch 4:   L4 {:.1} vs E2E {:.1}  (velocity x{:.1})",
        h.fps_l4_batch4, h.fps_e2e_batch4, h.velocity_gain
    );

    // 2. The memory story: the proposed design places; E2E does not.
    let platform = Platform::proposed()?;
    println!("\n== Proposed platform (L3, 30 MB SRAM) ==");
    println!(
        "  SRAM used: {:.2} MB (paper: 29.4)",
        platform.sram_used_mb()
    );
    println!(
        "  frozen weights in STT-MRAM: {:.1} MB (paper: ~100)",
        platform.placement().mram_weight_mb()
    );
    println!(
        "  NVM stays read-only in flight: {}",
        platform.is_nvm_write_free(Topology::L3)
    );
    println!(
        "  E2E placeable on the same memories: {}",
        Platform::new(Topology::E2E, 30.0, 128.0).is_ok()
    );

    // 3. The mission story: what velocity can it fly?
    println!("\n== Velocity envelope at batch 4 ==");
    for (class, v) in Mission::velocity_envelope(&platform, 4) {
        println!(
            "  {:<10} d_min {:.1} m  ->  {:5.1} m/s",
            class.name, class.d_min, v
        );
    }

    // 4. The learning story: a short metered deployment (micro scale).
    println!("\n== 300-frame deployment in the indoor apartment ==");
    let report = DeploymentSim::new(platform, EnvKind::IndoorApartment, 42).fly(300);
    println!("  episodes: {}", report.episodes);
    println!("  safe flight distance: {:.1} m", report.sfd_m);
    println!("  platform energy: {:.1} J", report.energy_j);
    println!("  NVM bytes written: {}", report.nvm_bytes_written);
    Ok(())
}
