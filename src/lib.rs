//! # mramrl
//!
//! A full reproduction of *"Transfer and Online Reinforcement Learning in
//! STT-MRAM Based Embedded Systems for Autonomous Drones"* (Yoon, Anwar,
//! Rakshit, Raychowdhury — DATE 2019) as a Rust workspace.
//!
//! This facade crate re-exports the whole stack; see the README for the
//! architecture map and `crates/bench` for the per-figure reproduction
//! binaries.
//!
//! * [`nn`] — from-scratch CNN library (the paper's modified AlexNet).
//! * [`env`](mod@env) — procedural drone worlds + ray-cast stereo-depth camera.
//! * [`rl`] — Q-learning, transfer learning, the L2/L3/L4/E2E topologies.
//! * [`serve`] — fleet inference serving: dynamic request batching over
//!   hot-swappable Q8.8 snapshots.
//! * [`mem`] — STT-MRAM stack, SRAM buffers, placement, endurance.
//! * [`systolic`] — the 32×32 PE array and its Type I/II/III mappings.
//! * [`accel`] — the latency/energy/power model (Fig. 12/13).
//! * [`core`] — the co-design API: [`Platform`], [`Mission`],
//!   [`DeploymentSim`], design-space sweeps, [`headline`].
//! * [`dse`] — fleet-scale design-space exploration: the parallel
//!   SRAM × MRAM × technology × topology × batch × scenario sweep and
//!   its 4-axis Pareto frontier report.
//!
//! # Examples
//!
//! ```
//! use mramrl::{headline, Calibration};
//!
//! let h = headline(Calibration::date19());
//! assert!(h.latency_reduction_pct > 80.0); // the paper's headline claim
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mramrl_accel as accel;
pub use mramrl_core as core;
pub use mramrl_dse as dse;
pub use mramrl_env as env;
pub use mramrl_fixed as fixed;
pub use mramrl_mem as mem;
pub use mramrl_nn as nn;
pub use mramrl_rl as rl;
pub use mramrl_serve as serve;
pub use mramrl_systolic as systolic;

pub use mramrl_core::{
    headline, Calibration, CoreError, DeploymentSim, DesignSweep, Headline, Mission, Platform,
    PlatformModel, Topology, ENV_CLASSES,
};
pub use mramrl_env::{DroneEnv, EnvKind};
pub use mramrl_nn::{NetworkSpec, Tensor};
pub use mramrl_rl::{Fig10Experiment, QAgent, Trainer, TrainerConfig, TransferCache};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let h = crate::headline(crate::Calibration::date19());
        assert!(h.velocity_gain > 1.0);
    }
}
