//! Integration tests pinning every quantitative claim the paper makes to
//! the reproduction's outputs (the executable EXPERIMENTS.md).

use mramrl::accel::{paper, PlatformModel};
use mramrl::{headline, Calibration, Mission, NetworkSpec, Platform, Topology};

#[test]
fn claim_fig1_fps_equals_v_over_dmin() {
    for (v, name, fps) in paper::FIG1_SPOT_CHECKS {
        let class = mramrl::ENV_CLASSES.iter().find(|c| c.name == name).unwrap();
        assert!((Mission::required_fps(v, class.d_min) - fps).abs() < 0.005);
    }
}

#[test]
fn claim_fig3a_weight_census_exact() {
    let spec = NetworkSpec::date19_alexnet();
    assert_eq!(spec.total_weights(), 56_190_341);
    let census = spec.weight_census();
    let fc_sum: u64 = census
        .iter()
        .filter(|c| c.name.starts_with("FC"))
        .map(|c| c.weights)
        .sum();
    assert_eq!(fc_sum, 52_443_141); // the paper's "sum" row
}

#[test]
fn claim_4_11_26_percent_topologies() {
    let spec = NetworkSpec::date19_alexnet();
    let pct = |k| spec.trainable_fraction_for_tail(k) * 100.0;
    assert!((pct(2) - 3.743).abs() < 0.01); // "4%"
    assert!((pct(3) - 11.21).abs() < 0.01); // "11%"
    assert!((pct(4) - 26.14).abs() < 0.01); // "26%"
}

#[test]
fn claim_fig5_memory_footprints() {
    let p = Platform::proposed().unwrap();
    assert!((p.sram_used_mb() - 29.4).abs() < 0.05);
    assert!((p.placement().mram_weight_mb() - 99.8).abs() < 0.5);
}

#[test]
fn claim_fig12_tables_within_tolerance() {
    let m = PlatformModel::new(Calibration::date19());
    let fwd_ms: f64 = m.forward_table().iter().map(|c| c.latency_ms).sum();
    assert!((fwd_ms - paper::FWD_TOTAL_MS).abs() / paper::FWD_TOTAL_MS < 0.03);
    let bwd_ms: f64 = m.backward_table().iter().map(|c| c.latency_ms).sum();
    assert!((bwd_ms - paper::BWD_TOTAL_MS).abs() / paper::BWD_TOTAL_MS < 0.02);
    // Every derived FC row within 8 % of Fig. 12.
    for (ours, p) in m.forward_table()[5..9].iter().zip(&paper::FWD[5..9]) {
        assert!(
            (ours.latency_ms - p.latency_ms).abs() / p.latency_ms < 0.08,
            "{}",
            p.name
        );
    }
    for (ours, p) in m.backward_table()[5..9].iter().zip(&paper::BWD[5..9]) {
        assert!(
            (ours.latency_ms - p.latency_ms).abs() / p.latency_ms < 0.08,
            "{}",
            p.name
        );
    }
}

#[test]
fn claim_headline_reductions_and_fps() {
    let h = headline(Calibration::date19());
    // "79.4% (83.45%) decrease in latency (energy)" — per Fig. 12 the
    // roles are swapped; both numbers appear, each within a small band.
    assert!((h.latency_reduction_pct - 83.5).abs() < 1.5);
    assert!((h.energy_reduction_pct - 79.4).abs() < 4.0);
    // "for a batch-size of 4, we can support 15fps for L4".
    assert!((h.fps_l4_batch4 - 15.0).abs() < 1.0);
    // "compared to just 3fps for E2E" — ours is ~6 (documented); the
    // infeasibility conclusion (below indoor requirements at speed) holds.
    assert!(h.fps_e2e_batch4 < Mission::required_fps(5.0, 0.7));
    // "more than 3X increase in the velocity of the drone" — we reproduce
    // ≥2× against our (more favourable) E2E model.
    assert!(h.velocity_gain > 2.0);
}

#[test]
fn claim_e2e_not_feasible_on_nvm_platform() {
    // §II-C / §VI: E2E cannot even place on the proposed memories…
    assert!(Platform::new(Topology::E2E, 30.0, 128.0).is_err());
    // …and on an oversized stack it still writes the NVM in flight.
    let p = Platform::new(Topology::E2E, 30.0, 256.0).unwrap();
    assert!(!p.is_nvm_write_free(Topology::E2E));
    // While all L topologies are write-free on their architectures.
    for (t, sram) in [
        (Topology::L2, 12.7),
        (Topology::L3, 30.0),
        (Topology::L4, 63.0),
    ] {
        assert!(
            Platform::new(t, sram, 128.0).unwrap().is_nvm_write_free(t),
            "{t}"
        );
    }
}

#[test]
fn claim_table1_drives_the_write_wall() {
    // The FC1 backward RMW (the number that kills E2E) follows from
    // Table 1 alone: 75.5 MB / (1024 bit / 30 ns) ≈ 17.7 ms per image.
    let m = PlatformModel::new(Calibration::date19());
    let fc1 = m.backward_table().iter().find(|c| c.name == "FC1").unwrap();
    assert!(fc1.latency_ms > 25.0, "{}", fc1.latency_ms);
    let fc2 = m.backward_table().iter().find(|c| c.name == "FC2").unwrap();
    assert!(fc1.latency_ms > 7.0 * fc2.latency_ms);
}

#[test]
fn claim_orderings_hold_without_anchoring() {
    // Everything the paper *concludes* must survive the ideal (fully
    // derived, zero-anchored) profile.
    let m = PlatformModel::new(Calibration::ideal());
    let per = |t| m.per_image(t).total_ms();
    assert!(per(Topology::L2) < per(Topology::L3));
    assert!(per(Topology::L3) < per(Topology::L4));
    assert!(per(Topology::L4) < per(Topology::E2E) / 3.0);
    let h = headline(Calibration::ideal());
    assert!(h.latency_reduction_pct > 50.0);
    assert!(h.energy_reduction_pct > 50.0);
}
