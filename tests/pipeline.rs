//! Cross-crate integration: the full TL → deploy → online-RL pipeline.

use mramrl::rl::experiment::normalized_sfd;
use mramrl::{
    DeploymentSim, DroneEnv, EnvKind, Fig10Experiment, NetworkSpec, Platform, QAgent, Topology,
    Trainer, TrainerConfig, TransferCache,
};

#[test]
fn tl_then_partial_online_rl_end_to_end() {
    // TL phase on the meta environment (E2E, from scratch).
    let px = 16usize;
    let spec = NetworkSpec::micro(px, 1, 5);
    let cam = || mramrl::env::DepthCamera::new(px, px, 90.0f32.to_radians(), 20.0, 0.02);
    let mut meta_env = DroneEnv::new(EnvKind::MetaIndoor, 3).with_camera(cam());
    let mut meta_agent = QAgent::new(&spec, 3);
    Topology::E2E.apply(meta_agent.net_mut());
    let tl_log =
        Trainer::new(TrainerConfig::transfer_learning(250, 3)).run(&mut meta_agent, &mut meta_env);
    assert!(tl_log.episodes > 0);
    let tl_weights = meta_agent.net().save_weights();

    // Deployment: download the meta model, freeze to L3, train online.
    let mut agent = QAgent::new(&spec, 99);
    agent.load_transfer(&tl_weights).expect("same structure");
    Topology::L3.apply(agent.net_mut());
    assert!(agent.net().trainable_fraction() < 0.9);
    let mut test_env = DroneEnv::new(EnvKind::IndoorApartment, 3).with_camera(cam());
    let log = Trainer::new(TrainerConfig::online(300, 3)).run(&mut agent, &mut test_env);
    assert!(!log.curve.is_empty());
    assert!(log.sfd > 0.0, "drone must fly some distance");

    // The conv stack is bit-identical to the TL download (frozen).
    let mut reference = QAgent::new(&spec, 1);
    reference.load_transfer(&tl_weights).unwrap();
    let conv_of = |a: &QAgent| -> Vec<f32> {
        a.net()
            .layers()
            .filter(|l| l.name().starts_with("CONV"))
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.value.data().to_vec()))
            .collect()
    };
    assert_eq!(conv_of(&agent), conv_of(&reference));
}

#[test]
fn experiment_matrix_produces_fig10_and_fig11_shapes() {
    let mut exp = Fig10Experiment::quick(11);
    exp.tl_iters = 120;
    exp.online_iters = 160;
    let mut cache = TransferCache::new();
    let runs = exp.run_env(&mut cache, EnvKind::OutdoorForest);
    assert_eq!(runs.len(), 4);
    let norm = normalized_sfd(&runs, EnvKind::OutdoorForest);
    assert_eq!(norm.len(), 4);
    let e2e = norm.iter().find(|(t, _)| *t == Topology::E2E).unwrap().1;
    assert!((e2e - 1.0).abs() < 1e-6);
    // Everyone flies: no zero SFD.
    for r in &runs {
        assert!(r.log.sfd > 0.0, "{}", r.topology);
    }
}

#[test]
fn deployment_sim_couples_learning_and_hardware() {
    let platform = Platform::proposed().expect("places");
    let fps = platform.max_fps(4);
    let report = DeploymentSim::new(platform, EnvKind::IndoorApartment, 21).fly(200);
    // Energy consistency: total energy ≈ energy/iteration × iterations.
    assert!(report.energy_j > 0.0);
    assert!(report.compute_s > 0.0);
    // The platform sustains the frames it claims: 200 frames at `fps`
    // take 200/fps seconds of wall time ≥ compute time.
    let wall_s = 200.0 / fps;
    assert!(
        report.compute_s <= wall_s * 1.05,
        "compute {} vs wall {}",
        report.compute_s,
        wall_s
    );
    assert_eq!(report.nvm_bytes_written, 0);
}

#[test]
fn transfer_cache_shared_across_indoor_tests() {
    let mut exp = Fig10Experiment::quick(5);
    exp.tl_iters = 100;
    exp.online_iters = 100;
    let mut cache = TransferCache::new();
    let _ = exp.run_env(&mut cache, EnvKind::IndoorApartment);
    let _ = exp.run_env(&mut cache, EnvKind::IndoorHouse);
    assert_eq!(cache.len(), 1, "both indoor tests share one meta model");
    let _ = exp.run_env(&mut cache, EnvKind::OutdoorForest);
    assert_eq!(cache.len(), 2);
}
