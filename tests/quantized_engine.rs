//! Cross-crate contracts of the batch-first Q8.8 inference engine:
//! the functional systolic model, the memory placement planner and the
//! deployment-mode RL evaluation all consume the same engine.

use mramrl::env::{DepthCamera, VecEnv};
use mramrl::fixed::Q8_8;
use mramrl::mem::{PlacementPlan, PlacementRequest, StorageClass};
use mramrl::nn::qgemm::QGemmBackend;
use mramrl::rl::{evaluate_vec, ActingPrecision};
use mramrl::systolic::{ArraySpec, FcArraySim};
use mramrl::{DroneEnv, EnvKind, NetworkSpec, QAgent};

/// Deterministic Q8.8-exact values (|v| ≤ 0.25, on the 1/256 grid).
fn grid_vals(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h % 129) as f32 - 64.0) / 256.0
        })
        .collect()
}

/// The systolic array's batched FC dataflow (Fig. 7, tile-resident
/// weights) and the engine's integer GEMM compute the **same bits**:
/// both are bias-seeded ascending-`k` Acc32 chains, re-quantised once.
/// This is the one test that pins the functional hardware model to the
/// deployable engine.
#[test]
fn systolic_batched_fc_matches_qgemm_engine_bitwise() {
    for (in_f, out_f, n) in [(33usize, 31usize, 4usize), (100, 70, 8)] {
        let w = grid_vals(in_f * out_f, 1);
        let b = grid_vals(out_f, 2);
        let xs = grid_vals(n * in_f, 3);

        // Functional array model: [n × out_f] dequantised.
        let sim = FcArraySim::load(&ArraySpec::date19(), in_f, out_f, &w, &b);
        let array_out = sim.forward_batch(&xs);

        // Engine kernel on the same quantised operands: the FC batch
        // [n × in_f] is the Bᵀ operand, C is [out_f × n].
        let wq: Vec<Q8_8> = w.iter().map(|&v| Q8_8::from_f32(v)).collect();
        let bq: Vec<Q8_8> = b.iter().map(|&v| Q8_8::from_f32(v)).collect();
        let xq: Vec<Q8_8> = xs.iter().map(|&v| Q8_8::from_f32(v)).collect();
        for be in QGemmBackend::ALL {
            let mut c = vec![Q8_8::ZERO; out_f * n];
            be.matmul_bt_bias_requant_into(&mut c, &wq, &xq, &bq, out_f, in_f, n);
            for v in 0..n {
                for j in 0..out_f {
                    assert_eq!(
                        array_out[v * out_f + j].to_bits(),
                        c[j * n + v].to_f32().to_bits(),
                        "{be} in_f={in_f} out_f={out_f} vector={v} out={j}"
                    );
                }
            }
        }
    }
}

/// The engine's per-layer byte accounting is exactly what the placement
/// planner distributes: a deployment-mode (all-frozen) plan puts every
/// engine byte in STT-MRAM, and an online-training tail moves exactly
/// those layers' bytes (plus same-sized gradient accumulators) to SRAM
/// — total conserved either way.
#[test]
fn engine_bytes_round_trip_through_placement() {
    let spec = NetworkSpec::micro(40, 1, 5);
    let engine = mramrl::nn::QuantizedNet::from_network(&spec, &spec.build(3)).unwrap();
    let layer_bytes = engine.layer_weight_bytes();
    let total = engine.weight_bytes();

    // Deployment mode: every layer frozen → all bytes MRAM-resident.
    let frozen: Vec<(String, u64, bool)> = layer_bytes
        .iter()
        .map(|(n, b)| (n.clone(), *b, false))
        .collect();
    let plan =
        PlacementPlan::solve(&PlacementRequest::new(frozen, 1024, 100_000, 10_000_000)).unwrap();
    assert_eq!(plan.mram_weight_bytes(), total);
    assert_eq!(plan.sram_weight_bytes(), 0);
    assert!(plan.is_write_free_nvm());

    // Online tail (the paper's L3): the last 3 layers' engine bytes move
    // to SRAM, twice (weights + gradient sums); the rest stay in MRAM.
    let k = layer_bytes.len();
    let tail3: Vec<(String, u64, bool)> = layer_bytes
        .iter()
        .enumerate()
        .map(|(i, (n, b))| (n.clone(), *b, i >= k - 3))
        .collect();
    let tail_bytes: u64 = layer_bytes[k - 3..].iter().map(|(_, b)| *b).sum();
    let plan =
        PlacementPlan::solve(&PlacementRequest::new(tail3, 1024, 10_000_000, 10_000_000)).unwrap();
    assert_eq!(plan.sram_weight_bytes(), tail_bytes);
    assert_eq!(plan.sram_gradient_bytes(), tail_bytes);
    assert_eq!(plan.mram_weight_bytes() + plan.sram_weight_bytes(), total);
    assert_eq!(
        plan.layer("FC5").unwrap().weights_in,
        StorageClass::Sram,
        "the output layer is always in the trained tail"
    );
}

/// End-to-end deployment: a trained agent evaluated over a VecEnv fleet
/// in fixed-point acting mode — finite, deterministic, and actually on
/// the Q8.8 grid.
#[test]
fn deployment_mode_fleet_evaluation() {
    let spec = NetworkSpec::micro(16, 1, 5);
    let env = |seed| {
        DroneEnv::new(EnvKind::IndoorApartment, seed)
            .with_camera(DepthCamera::new(16, 16, 1.5, 20.0, 0.01))
    };
    let run = || {
        let mut agent = QAgent::new(&spec, 9).with_acting_precision(ActingPrecision::FixedQ8_8);
        let mut venv = VecEnv::from_envs(vec![env(1), env(2), env(3), env(4)]);
        evaluate_vec(&mut agent, &mut venv, 160, 0.02, 7)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "deployment evaluation must be seed-deterministic");
    assert!(a.sfd >= 0.0 && a.mean_reward.is_finite() && a.episodes > 0);
}
