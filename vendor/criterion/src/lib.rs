//! Offline stand-in for the subset of the `criterion` 0.5 API that the
//! `mramrl` benches use: [`black_box`], [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple — a warm-up burst, then timed
//! batches for a fixed wall-clock budget, reporting mean ns/iter to
//! stdout. No statistics, HTML reports or baselines. The point is that
//! `cargo bench` runs and prints comparable numbers in seconds, and that
//! swapping the registry crate back in requires no source changes.
//!
//! Env knobs: `CRITERION_BUDGET_MS` (per-benchmark measuring time,
//! default 300), `CRITERION_QUICK=1` (single batch — used by smoke tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        let ms = if std::env::var_os("CRITERION_QUICK").is_some() {
            1
        } else {
            ms
        };
        Self {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        let ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{id:<40} {ns:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timer handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly until the measuring budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up & batch-size calibration: aim for batches of ~1 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters += batch;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test --benches` pass harness flags
            // (e.g. `--bench`, `--test`); none need parsing here, but
            // `--test` means "run as tests" — keep that cheap.
            if std::env::args().any(|a| a == "--test") {
                std::env::set_var("CRITERION_QUICK", "1");
            }
            $($group();)+
        }
    };
}
