//! Offline stand-in for the subset of the `proptest` 1.x API that the
//! `mramrl` property suites use: the [`proptest!`] macro, range / tuple /
//! [`collection::vec`] strategies, [`any`], `prop_map`, `prop_filter_map`,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed, case index and the
//!   sampled inputs (via `Debug` where the driver can capture them), but is
//!   not minimised.
//! * **Case count** defaults to 64 (upstream: 256) so the whole workspace
//!   suite runs in seconds; override with `PROPTEST_CASES`.
//! * Generation is a fixed deterministic stream per test (seeded from the
//!   test name) unless `PROPTEST_SEED` is set, so failures reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG handed to strategies by the [`proptest!`] driver.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeded constructor (used by the driver; tests normally never touch this).
    pub fn from_seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// `new_value` returns `None` when the underlying generation was rejected
/// (only `prop_filter_map` rejects); the driver retries rejected draws.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Draw one value, or `None` on a filtered-out draw.
    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Map through `f`, rejecting draws where `f` returns `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.new_value(rng).and_then(&self.f)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.new_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly log-uniform magnitude — enough for numeric tests.
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`: `any::<i16>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(strategy, len_range)` — upstream-compatible constructor.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Driver plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion / property with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Outcome of running a single sampled case.
    pub enum CaseResult {
        /// Property held.
        Pass,
        /// Strategy rejected the draw (e.g. `prop_filter_map`); retry.
        Reject,
        /// Property failed.
        Fail(TestCaseError),
    }

    /// Sample one value from `strategy` (used by the macro expansion).
    pub fn sample<S: Strategy>(strategy: &S, rng: &mut TestRng) -> Option<S::Value> {
        strategy.new_value(rng)
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    /// Run `case` until the configured number of cases pass.
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// reporting the seed and case index so the run can be reproduced with
    /// `PROPTEST_SEED`.
    pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
        let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
        let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| {
            // Stable per-test default seed derived from the test name (FNV-1a).
            name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            })
        });
        let mut rng = TestRng::from_seed(seed);
        let mut passed = 0u64;
        let mut rejected = 0u64;
        while passed < cases {
            match case(&mut rng) {
                CaseResult::Pass => passed += 1,
                CaseResult::Reject => {
                    rejected += 1;
                    assert!(
                        rejected <= 65_536,
                        "proptest '{name}': too many rejected draws \
                         ({rejected}) after {passed} passing cases"
                    );
                }
                CaseResult::Fail(err) => panic!(
                    "proptest '{name}' failed at case {passed} \
                     (seed {seed}, PROPTEST_SEED={seed} to reproduce):\n{err}"
                ),
            }
        }
    }
}

/// Everything a property-test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: `proptest! { #[test] fn f(x in 0..10) {...} }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(
                        let $pat = match $crate::test_runner::sample(
                            &($strat),
                            __proptest_rng,
                        ) {
                            Some(v) => v,
                            None => return $crate::test_runner::CaseResult::Reject,
                        };
                    )*
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __proptest_result {
                        ::core::result::Result::Ok(()) => $crate::test_runner::CaseResult::Pass,
                        ::core::result::Result::Err(e) => $crate::test_runner::CaseResult::Fail(e),
                    }
                });
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0i32..10, 5u64..6), v in collection::vec(0usize..3, 2..5)) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn filter_map_rejects(x in (0i32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bounds(x in any::<i16>(), flag in any::<bool>()) {
            let _ = flag;
            prop_assert!(i32::from(x) >= i32::from(i16::MIN));
        }
    }
}
