//! Offline stand-in for the subset of the `rand` 0.8 API that `mramrl`
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real crate cannot be fetched. This crate keeps the exact import paths
//! (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::SmallRng`) so swapping
//! the registry version back in is a one-line change in the workspace
//! manifest. `SmallRng` here is xoshiro256++ seeded by SplitMix64 —
//! deterministic across platforms, which the seeded tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint. The
                // largest representable value below `end` is always >= start
                // (start itself is such a value), for any sign of `end`.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `SmallRng`.
    ///
    /// Not the same stream as upstream `SmallRng`; everything in this
    /// workspace that depends on exact values derives them through a seed,
    /// so only determinism (not stream identity) matters.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i16..9);
            assert!((-3..9).contains(&x));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn float_endpoint_guard_respects_sign() {
        // The rounding guard must stay inside the half-open range even for
        // zero and negative excluded endpoints (a plain bits-1 would panic
        // on 0.0 and move the wrong way for negative ends).
        assert!(0.0f32.next_down() < 0.0);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(-1.0f32..0.0);
            assert!((-1.0..0.0).contains(&a), "{a} outside -1..0");
            let b = rng.gen_range(-2.0f32..-0.5);
            assert!((-2.0..-0.5).contains(&b), "{b} outside -2..-0.5");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
